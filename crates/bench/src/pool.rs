//! `simpool` — a deterministic scoped-OS-thread worker pool for
//! independent simulation points.
//!
//! Every figure bin, the chaos sweep and selfperf fan dozens-to-hundreds
//! of mutually independent `(workload, mode, threads, seed, knobs)`
//! simulation points through this pool. The contract that makes the
//! parallelism safe to gate CI on is **pool-size invariance**: results
//! are always collected and handed back in *submission order*, so every
//! artifact derived from them (CSV cells, JSON documents, normalized
//! series) is byte-identical for pool size 1, N, or `--jobs auto`. The
//! simulations themselves are deterministic and share no mutable state,
//! so the only ordering the pool has to defend is its own.
//!
//! Failure semantics: a panicking point never poisons the others
//! silently. Workers catch the unwind, a cancellation flag stops
//! handing out *new* points, already-started points run to completion,
//! and the sweep fails with the **lowest-index** failed point — which is
//! deterministic, because every point with a smaller index was already
//! handed out (the queue is strictly in submission order) and therefore
//! ran to its own verdict. `tests/runner_proptest.rs` hammers exactly
//! these properties.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Mutex;

/// A sweep failed: one of its points panicked.
#[derive(Debug)]
pub struct SweepError {
    /// Submission index of the failed point (lowest index when several
    /// points failed — deterministic at any pool size).
    pub index: usize,
    /// Human-readable identity of the point, from the sweep's labeller.
    pub label: String,
    /// The panic payload, stringified.
    pub payload: String,
}

impl std::fmt::Display for SweepError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "sweep point #{} ({}) panicked: {}", self.index, self.label, self.payload)
    }
}

impl std::error::Error for SweepError {}

/// Run `run` over every point, `jobs` points concurrently, and return
/// the results **in submission order** regardless of completion order.
///
/// * `jobs == 1` executes inline on the calling thread (no spawns), and
///   larger pools are clamped to the number of points.
/// * `on_done(completed_so_far, index)` fires after each point finishes,
///   from whichever thread finished it (progress reporting only — it
///   must not write to artifacts).
/// * On a panic inside `run`, remaining queued points are cancelled and
///   the lowest-index failure is returned with `label(point)` identity.
pub fn try_map_ordered<P, R>(
    jobs: usize,
    points: &[P],
    label: impl Fn(&P) -> String + Sync,
    run: impl Fn(usize, &P) -> R + Sync,
    on_done: impl Fn(usize, usize) + Sync,
) -> Result<Vec<R>, SweepError>
where
    P: Sync,
    R: Send,
{
    if points.is_empty() {
        return Ok(Vec::new());
    }
    let jobs = jobs.clamp(1, points.len());
    let slots: Vec<Mutex<Option<Result<R, String>>>> =
        points.iter().map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    let done = AtomicUsize::new(0);
    let cancelled = AtomicBool::new(false);
    let worker = || {
        loop {
            if cancelled.load(Ordering::Relaxed) {
                break;
            }
            let i = next.fetch_add(1, Ordering::Relaxed);
            if i >= points.len() {
                break;
            }
            let out = catch_unwind(AssertUnwindSafe(|| run(i, &points[i])));
            let out = out.map_err(|p| {
                cancelled.store(true, Ordering::Relaxed);
                // `&*p`: downcast the payload itself, not the box around it.
                payload_text(&*p)
            });
            *slots[i].lock().expect("result slot") = Some(out);
            on_done(done.fetch_add(1, Ordering::Relaxed) + 1, i);
        }
    };
    if jobs == 1 {
        worker();
    } else {
        std::thread::scope(|s| {
            for n in 0..jobs {
                std::thread::Builder::new()
                    .name(format!("simpool-{n}"))
                    .spawn_scoped(s, worker)
                    .expect("spawn pool worker");
            }
        });
    }
    let mut out = Vec::with_capacity(points.len());
    for (i, slot) in slots.into_iter().enumerate() {
        match slot.into_inner().expect("result slot") {
            Some(Ok(r)) => out.push(r),
            Some(Err(payload)) => {
                return Err(SweepError { index: i, label: label(&points[i]), payload });
            }
            // Only reachable after a cancellation: a later point was
            // never started. The failure that caused it sits at a lower
            // index and was returned above.
            None => unreachable!("unstarted point before any failure"),
        }
    }
    Ok(out)
}

/// Verdict of one point under [`try_map_ordered_pruned`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PointOutcome<R> {
    /// Keep going: the point produced a result and the sweep continues.
    Continue(R),
    /// Stop here: the point produced a result that makes the rest of the
    /// sweep unnecessary (e.g. the first violating schedule under
    /// `--stop-first`). The result is kept; later points are dropped.
    Prune(R),
}

/// [`try_map_ordered`] with early exit: a point may return
/// [`PointOutcome::Prune`] to cancel the remainder of the sweep while
/// keeping its own result.
///
/// Returns submission-ordered slots: `Some` for every point up to and
/// including the **lowest-index** pruning point, `None` after it. The
/// output is pool-size invariant: the queue hands indices out strictly
/// in submission order and started points run to completion, so every
/// index below the first "event" (panic or prune) has a completed
/// `Continue` verdict at any pool size — and everything a bigger pool
/// happens to compute beyond the first prune is dropped, because a
/// 1-job pool would never have started it. A panic below the first
/// prune fails the sweep exactly like [`try_map_ordered`]; a panic
/// above it is discarded with the rest of the over-computation.
pub fn try_map_ordered_pruned<P, R>(
    jobs: usize,
    points: &[P],
    label: impl Fn(&P) -> String + Sync,
    run: impl Fn(usize, &P) -> PointOutcome<R> + Sync,
    on_done: impl Fn(usize, usize) + Sync,
) -> Result<Vec<Option<R>>, SweepError>
where
    P: Sync,
    R: Send,
{
    if points.is_empty() {
        return Ok(Vec::new());
    }
    let jobs = jobs.clamp(1, points.len());
    type Slot<R> = Mutex<Option<Result<(R, bool), String>>>;
    let slots: Vec<Slot<R>> = points.iter().map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    let done = AtomicUsize::new(0);
    let cancelled = AtomicBool::new(false);
    let worker = || loop {
        if cancelled.load(Ordering::Relaxed) {
            break;
        }
        let i = next.fetch_add(1, Ordering::Relaxed);
        if i >= points.len() {
            break;
        }
        let out = catch_unwind(AssertUnwindSafe(|| run(i, &points[i])));
        let out = match out {
            Ok(PointOutcome::Continue(r)) => Ok((r, false)),
            Ok(PointOutcome::Prune(r)) => {
                cancelled.store(true, Ordering::Relaxed);
                Ok((r, true))
            }
            Err(p) => {
                cancelled.store(true, Ordering::Relaxed);
                Err(payload_text(&*p))
            }
        };
        *slots[i].lock().expect("result slot") = Some(out);
        on_done(done.fetch_add(1, Ordering::Relaxed) + 1, i);
    };
    if jobs == 1 {
        worker();
    } else {
        std::thread::scope(|s| {
            for n in 0..jobs {
                std::thread::Builder::new()
                    .name(format!("simpool-{n}"))
                    .spawn_scoped(s, worker)
                    .expect("spawn pool worker");
            }
        });
    }
    let mut out: Vec<Option<R>> = Vec::with_capacity(points.len());
    let mut pruned = false;
    for (i, slot) in slots.into_iter().enumerate() {
        if pruned {
            // Over-computation by a bigger pool: a 1-job sweep would
            // never have started this point. Drop it, verdict and all.
            out.push(None);
            continue;
        }
        match slot.into_inner().expect("result slot") {
            Some(Ok((r, prune))) => {
                pruned = prune;
                out.push(Some(r));
            }
            Some(Err(payload)) => {
                return Err(SweepError { index: i, label: label(&points[i]), payload });
            }
            // Unstarted: only possible after a cancellation, whose cause
            // (panic or prune) sits at a lower index and was handled.
            None => unreachable!("unstarted point before any failure or prune"),
        }
    }
    Ok(out)
}

fn payload_text(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_come_back_in_submission_order() {
        let points: Vec<usize> = (0..25).collect();
        for jobs in [1, 2, 4, 8] {
            let out = try_map_ordered(
                jobs,
                &points,
                |p| p.to_string(),
                |_, p| {
                    // Early points sleep longer: completion order is the
                    // reverse of submission order under a big pool.
                    std::thread::sleep(std::time::Duration::from_micros(
                        (points.len() - p) as u64 * 40,
                    ));
                    p * 3
                },
                |_, _| {},
            )
            .unwrap();
            let want: Vec<usize> = points.iter().map(|p| p * 3).collect();
            assert_eq!(out, want, "jobs={jobs}");
        }
    }

    #[test]
    fn empty_sweep_is_empty() {
        let out: Vec<u32> =
            try_map_ordered(4, &[] as &[u8], |_| String::new(), |_, _| 0, |_, _| {}).unwrap();
        assert!(out.is_empty());
    }

    #[test]
    fn lowest_index_panic_wins_at_any_pool_size() {
        let points: Vec<usize> = (0..40).collect();
        for jobs in [1, 3, 8] {
            let err = try_map_ordered(
                jobs,
                &points,
                |p| format!("point-{p}"),
                |_, p| {
                    if p % 7 == 3 {
                        panic!("boom at {p}");
                    }
                    *p
                },
                |_, _| {},
            )
            .unwrap_err();
            assert_eq!(err.index, 3, "jobs={jobs}");
            assert_eq!(err.label, "point-3");
            assert!(err.payload.contains("boom at 3"), "{}", err.payload);
        }
    }

    #[test]
    fn pruned_map_truncates_identically_at_any_pool_size() {
        let points: Vec<usize> = (0..30).collect();
        let mut expect: Vec<Option<usize>> = points.iter().map(|p| Some(p * 2)).collect();
        for slot in expect.iter_mut().skip(12) {
            *slot = None;
        }
        expect[11] = Some(22);
        for jobs in [1, 2, 4, 8] {
            let out = try_map_ordered_pruned(
                jobs,
                &points,
                |p| p.to_string(),
                |_, p| {
                    if *p == 11 {
                        PointOutcome::Prune(p * 2)
                    } else {
                        PointOutcome::Continue(p * 2)
                    }
                },
                |_, _| {},
            )
            .unwrap();
            assert_eq!(out, expect, "jobs={jobs}");
        }
    }

    #[test]
    fn panic_below_the_first_prune_fails_the_pruned_sweep() {
        let points: Vec<usize> = (0..20).collect();
        for jobs in [1, 4] {
            let err = try_map_ordered_pruned(
                jobs,
                &points,
                |p| format!("pt-{p}"),
                |_, p| {
                    if *p == 5 {
                        panic!("kaboom");
                    }
                    if *p == 9 {
                        PointOutcome::Prune(*p)
                    } else {
                        PointOutcome::Continue(*p)
                    }
                },
                |_, _| {},
            )
            .unwrap_err();
            assert_eq!(err.index, 5, "jobs={jobs}");
        }
    }

    #[test]
    fn panic_beyond_the_first_prune_is_dropped_overcomputation() {
        // At jobs=1 point 3 prunes before point 7 ever starts, so a
        // panic at 7 must not surface at any pool size.
        let points: Vec<usize> = (0..8).collect();
        for jobs in [1, 4, 8] {
            let out = try_map_ordered_pruned(
                jobs,
                &points,
                |p| p.to_string(),
                |_, p| {
                    if *p == 3 {
                        return PointOutcome::Prune(*p);
                    }
                    if *p == 7 {
                        // Give the pruner time to win the race so the
                        // jobs=8 ordering matches jobs=1 semantics.
                        std::thread::sleep(std::time::Duration::from_millis(30));
                        panic!("late kaboom");
                    }
                    PointOutcome::Continue(*p)
                },
                |_, _| {},
            );
            let out = out.unwrap_or_else(|e| panic!("jobs={jobs}: {e}"));
            assert_eq!(out[3], Some(3), "jobs={jobs}");
            assert!(out[4..].iter().all(Option::is_none), "jobs={jobs}");
        }
    }

    #[test]
    fn pruned_map_without_prunes_matches_plain_map() {
        let points: Vec<usize> = (0..10).collect();
        let out = try_map_ordered_pruned(
            3,
            &points,
            |p| p.to_string(),
            |_, p| PointOutcome::Continue(p + 100),
            |_, _| {},
        )
        .unwrap();
        assert_eq!(out, points.iter().map(|p| Some(p + 100)).collect::<Vec<_>>());
    }

    #[test]
    fn progress_counts_every_point_once() {
        let seen = AtomicUsize::new(0);
        let points: Vec<u32> = (0..17).collect();
        let out = try_map_ordered(
            4,
            &points,
            |p| p.to_string(),
            |_, p| *p,
            |completed, _| {
                seen.fetch_max(completed, Ordering::Relaxed);
            },
        )
        .unwrap();
        assert_eq!(out.len(), 17);
        assert_eq!(seen.load(Ordering::Relaxed), 17);
    }
}
