//! Opt-in machine-readable run reports for the bench binaries.
//!
//! Every `bench/src/bin/*` binary accepts `--report-json <path>` (or
//! `--report-json=<path>`). When given, each [`RunReport`] produced by the
//! harness during the run is captured, and at exit a single JSON document
//! (schema `htm-gil-bench-report/v1`) with the per-run abort breakdowns by
//! reason and by attributed VM structure is written to `<path>`. Without
//! the flag the collector stays uninstalled and [`record`] is a no-op, so
//! the human-readable tables and CSV outputs are unchanged.

use std::cell::RefCell;
use std::path::PathBuf;
use std::sync::Mutex;

use htm_gil_core::{Json, RunReport};

static COLLECTOR: Mutex<Option<Collector>> = Mutex::new(None);

thread_local! {
    /// Per-point capture buffer installed by [`capture`] around a pool
    /// worker's point execution. `Some` diverts [`record`] calls away
    /// from the process-global collector so the runner can flush them in
    /// submission order — the order a serial run would have produced —
    /// instead of completion order.
    static CAPTURE: RefCell<Option<Vec<Json>>> = const { RefCell::new(None) };
}

#[derive(Debug)]
struct Collector {
    path: PathBuf,
    binary: String,
    runs: Vec<Json>,
}

/// Scan `std::env::args()` for `--report-json <path>` and install the
/// collector when present. Binaries call this first thing in `main`.
pub fn init_from_args() {
    let mut args = std::env::args();
    let binary = args
        .next()
        .map(|argv0| {
            PathBuf::from(argv0)
                .file_stem()
                .map(|s| s.to_string_lossy().into_owned())
                .unwrap_or_default()
        })
        .unwrap_or_default();
    while let Some(arg) = args.next() {
        if arg == "--report-json" {
            match args.next() {
                Some(path) => return install(&binary, PathBuf::from(path)),
                None => {
                    eprintln!("error: --report-json requires a path argument");
                    std::process::exit(2);
                }
            }
        } else if let Some(path) = arg.strip_prefix("--report-json=") {
            return install(&binary, PathBuf::from(path));
        }
    }
}

/// Install the collector explicitly (tests use this instead of argv).
pub fn install(binary: &str, path: PathBuf) {
    let mut guard = COLLECTOR.lock().unwrap();
    *guard = Some(Collector { path, binary: binary.to_string(), runs: Vec::new() });
}

/// True when a `--report-json` collector is active.
pub fn enabled() -> bool {
    COLLECTOR.lock().unwrap().is_some()
}

/// Capture one run. No-op unless [`init_from_args`]/[`install`] armed the
/// collector; the harness calls this for every completed workload run.
/// Inside a pool worker (see [`capture`]) the entry lands in the point's
/// buffer instead of the global collector.
pub fn record(workload: &str, report: &RunReport) {
    let diverted = CAPTURE.with(|c| {
        let mut slot = c.borrow_mut();
        match slot.as_mut() {
            Some(buf) => {
                buf.push(entry(workload, report));
                true
            }
            None => false,
        }
    });
    if diverted {
        return;
    }
    let mut guard = COLLECTOR.lock().unwrap();
    if let Some(collector) = guard.as_mut() {
        collector.runs.push(entry(workload, report));
    }
}

fn entry(workload: &str, report: &RunReport) -> Json {
    Json::obj().field("workload", workload).field("report", report.to_json())
}

/// Run `f` with [`record`] calls diverted into a per-point buffer, and
/// return the result together with the captured entries. When the
/// collector is disarmed the diversion is skipped entirely (records stay
/// no-ops). The buffer is cleared even if `f` panics, so a reused pool
/// worker never leaks a failed point's records into the next point.
pub(crate) fn capture<R>(f: impl FnOnce() -> R) -> (R, Vec<Json>) {
    if !enabled() {
        return (f(), Vec::new());
    }
    struct Guard;
    impl Drop for Guard {
        fn drop(&mut self) {
            CAPTURE.with(|c| *c.borrow_mut() = None);
        }
    }
    CAPTURE.with(|c| *c.borrow_mut() = Some(Vec::new()));
    let guard = Guard;
    let r = f();
    let buf = CAPTURE.with(|c| c.borrow_mut().take()).unwrap_or_default();
    drop(guard);
    (r, buf)
}

/// Append entries captured by [`capture`] to the collector, preserving
/// the caller's (submission) order. No-op when the collector is off.
pub(crate) fn flush_captured(entries: Vec<Json>) {
    if entries.is_empty() {
        return;
    }
    let mut guard = COLLECTOR.lock().unwrap();
    if let Some(collector) = guard.as_mut() {
        collector.runs.extend(entries);
    }
}

/// Write the collected document and disarm the collector. Binaries call
/// this at the end of `main`; without an armed collector it is a no-op.
pub fn finalize() {
    let taken = COLLECTOR.lock().unwrap().take();
    if let Some(collector) = taken {
        let count = collector.runs.len();
        let doc = Json::obj()
            .field("schema", "htm-gil-bench-report/v1")
            .field("binary", collector.binary.as_str())
            .field("run_count", count as u64)
            .field("runs", Json::Arr(collector.runs));
        let mut text = doc.to_pretty();
        text.push('\n');
        match std::fs::write(&collector.path, text) {
            Ok(()) => println!("  [json] {} ({count} runs)", collector.path.display()),
            Err(e) => eprintln!("warning: could not write {}: {e}", collector.path.display()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use htm_gil_core::RuntimeMode;
    use machine_sim::MachineProfile;

    // The collector is process-global; serialize the tests that touch it.
    static TEST_LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn collector_captures_runs_and_writes_document() {
        let _guard = TEST_LOCK.lock().unwrap();
        let path =
            std::env::temp_dir().join(format!("htmgil-report-test-{}.json", std::process::id()));
        install("unit-test", path.clone());
        assert!(enabled());
        let w = workloads::micro::while_bench(2, 40);
        let profile = MachineProfile::generic(4);
        let r = crate::run_workload(&w, RuntimeMode::Gil, &profile);
        // run_workload records into the armed collector by itself.
        drop(r);
        finalize();
        assert!(!enabled());
        let text = std::fs::read_to_string(&path).unwrap();
        let _ = std::fs::remove_file(&path);
        let doc = Json::parse(&text).unwrap();
        assert_eq!(doc.get("schema").unwrap().as_str(), Some("htm-gil-bench-report/v1"));
        let runs = doc.get("runs").unwrap().as_array().unwrap();
        assert_eq!(doc.get("run_count").unwrap().as_u64(), Some(runs.len() as u64));
        assert!(!runs.is_empty());
        let first = &runs[0];
        assert_eq!(first.get("workload").unwrap().as_str(), Some(w.name));
        let report = first.get("report").unwrap();
        assert_eq!(report.get("schema").unwrap().as_str(), Some("htm-gil-run-report/v1"));
        assert_eq!(report.get("mode").unwrap().as_str(), Some("GIL"));
    }

    #[test]
    fn record_without_collector_is_a_noop() {
        let _guard = TEST_LOCK.lock().unwrap();
        // Must not panic or allocate state when the collector is off.
        let w = workloads::micro::while_bench(1, 10);
        let profile = MachineProfile::generic(2);
        let r = crate::run_workload(&w, RuntimeMode::Gil, &profile);
        record("nobody-listens", &r);
    }
}
