//! # bench
//!
//! The experiment harness: shared drivers used by the per-figure binaries
//! (`fig4_micro`, `fig5_npb`, `fig6a_writeset`, `fig6b_bt_w`,
//! `fig7_servers`, `fig8_aborts`, `fig9_scalability`, `ablations`,
//! `intext_numbers`).
//!
//! Every binary prints paper-style tables and ASCII charts to stdout and
//! writes CSV files under `bench-results/` for external plotting.
//! `HTMGIL_QUICK=1` shrinks every sweep for smoke runs (the integration
//! tests use it).
//!
//! Sweeps fan out through the [`runner`] module's deterministic worker
//! pool (`--jobs <N|auto>`, default 1): independent simulation points
//! run concurrently, but results — and therefore every CSV/JSON byte —
//! are collected in submission order, identical at any pool size.

pub mod chaos;
pub mod explore;
pub mod figures;
pub mod pool;
pub mod reporting;
pub mod runner;
pub mod taskserver;

use std::fs;
use std::path::PathBuf;

use htm_gil_core::{ExecConfig, Executor, LengthPolicy, RunReport, RuntimeMode};
use htm_gil_stats::{Series, SeriesSet};
use machine_sim::MachineProfile;
use ruby_vm::VmConfig;
use workloads::Workload;

/// The paper's five throughput configurations (Figs. 5–7).
pub fn paper_modes() -> Vec<RuntimeMode> {
    vec![
        RuntimeMode::Gil,
        RuntimeMode::Htm { length: LengthPolicy::Fixed(1) },
        RuntimeMode::Htm { length: LengthPolicy::Fixed(16) },
        RuntimeMode::Htm { length: LengthPolicy::Fixed(256) },
        RuntimeMode::Htm { length: LengthPolicy::Dynamic },
    ]
}

/// Thread counts per machine, as in Fig. 5 ("1 to 2, 4, 6, and 8 on Xeon
/// …, and to 12 on zEC12").
pub fn thread_counts(profile: &MachineProfile) -> Vec<usize> {
    if profile.hw_threads() >= 12 {
        vec![1, 2, 4, 6, 8, 12]
    } else {
        vec![1, 2, 4, 6, 8]
    }
}

/// True when quick (smoke) mode is requested.
pub fn quick() -> bool {
    std::env::var("HTMGIL_QUICK").is_ok_and(|v| v != "0" && !v.is_empty())
}

/// VM sizing for a workload: paper's enlarged heap, enough thread slots.
pub fn vm_config_for(threads: usize) -> VmConfig {
    VmConfig { max_threads: threads + 2, ..VmConfig::default() }
}

/// Run one workload in one mode on one machine; panics on failure (the
/// harness treats any failed run as a bug).
pub fn run_workload(w: &Workload, mode: RuntimeMode, profile: &MachineProfile) -> RunReport {
    let cfg = ExecConfig::new(mode, profile);
    run_workload_with(w, profile, cfg, vm_config_for(w.threads))
}

/// Run with explicit configurations (ablations).
pub fn run_workload_with(
    w: &Workload,
    profile: &MachineProfile,
    cfg: ExecConfig,
    vm_config: VmConfig,
) -> RunReport {
    let mut ex = Executor::new(&w.source, vm_config, profile.clone(), cfg)
        .unwrap_or_else(|e| panic!("{}: {e}", w.name));
    let report = ex.run().unwrap_or_else(|e| panic!("{} ({}): {e}", w.name, profile.name));
    reporting::record(w.name, &report);
    report
}

/// Throughput metric for normalization: requests/cycle for server
/// workloads, committed-work/cycle for fixed-work benchmarks.
pub fn throughput_of(w: &Workload, r: &RunReport) -> f64 {
    if w.requests > 0 {
        w.requests as f64 / r.elapsed_cycles.max(1) as f64
    } else {
        1.0 / r.elapsed_cycles.max(1) as f64
    }
}

/// Sweep a workload builder over thread counts × the paper modes,
/// producing a Fig. 5-style panel normalized to 1-thread GIL.
///
/// The `mode × threads` points are independent simulations, so they fan
/// out through [`runner::sweep`]; results come back in submission order
/// (mode-major, threads inner — the order the old serial loop used), so
/// the assembled panel is byte-for-byte the same at any `--jobs` size.
pub fn sweep_panel(
    title: &str,
    profile: &MachineProfile,
    threads: &[usize],
    build: impl Fn(usize) -> Workload + Sync,
) -> SeriesSet {
    let points: Vec<(RuntimeMode, usize)> =
        paper_modes().into_iter().flat_map(|m| threads.iter().map(move |&n| (m, n))).collect();
    let results = runner::sweep(
        title,
        &points,
        |&(mode, n)| format!("{} t={n}", mode.label()),
        |&(mode, n)| {
            let w = build(n);
            let r = run_workload(&w, mode, profile);
            throughput_of(&w, &r)
        },
    );
    let mut set = SeriesSet::new(title, "threads", "throughput (1 = 1-thread GIL)");
    for (mode, chunk) in paper_modes().into_iter().zip(results.chunks(threads.len())) {
        let mut s = Series::new(mode.label());
        for (&n, &y) in threads.iter().zip(chunk) {
            s.push(n as f64, y);
        }
        set.add(s);
    }
    set.normalize_to("GIL", threads[0] as f64)
}

/// Repository root (where the `BENCH_*.json` trajectory files live).
pub fn repo_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..")
}

/// Where CSV results go.
pub fn results_dir() -> PathBuf {
    let dir = repo_root().join("bench-results");
    let _ = fs::create_dir_all(&dir);
    dir
}

/// Write a panel's CSV.
pub fn write_csv(name: &str, set: &SeriesSet) {
    let path = results_dir().join(format!("{name}.csv"));
    if let Err(e) = fs::write(&path, set.to_csv()) {
        eprintln!("warning: could not write {}: {e}", path.display());
    } else {
        println!("  [csv] {}", path.display());
    }
}

/// Print a panel as table + chart.
pub fn print_panel(set: &SeriesSet) {
    let mut xs: Vec<f64> =
        set.series.iter().flat_map(|s| s.points.iter().map(|&(x, _)| x)).collect();
    xs.sort_by(f64::total_cmp);
    xs.dedup_by(|a, b| (*a - *b).abs() < 1e-9);
    let mut header: Vec<String> = vec!["threads".into()];
    header.extend(set.series.iter().map(|s| s.label.clone()));
    let hdr_refs: Vec<&str> = header.iter().map(|s| s.as_str()).collect();
    let mut table = htm_gil_stats::Table::new(&hdr_refs);
    for x in &xs {
        let mut row = vec![format!("{x}")];
        for s in &set.series {
            row.push(s.y_at(*x).map(|y| format!("{y:.2}")).unwrap_or_default());
        }
        table.row(&row);
    }
    println!("\n== {} ==", set.title);
    println!("{}", table.render());
    println!("{}", htm_gil_stats::ascii_chart(set, 56, 14));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_modes_are_the_five_figure_configs() {
        let labels: Vec<String> = paper_modes().iter().map(|m| m.label()).collect();
        assert_eq!(labels, vec!["GIL", "HTM-1", "HTM-16", "HTM-256", "HTM-dynamic"]);
    }

    #[test]
    fn thread_counts_match_figure_axes() {
        assert_eq!(thread_counts(&MachineProfile::zec12()), vec![1, 2, 4, 6, 8, 12]);
        assert_eq!(thread_counts(&MachineProfile::xeon_e3_1275_v3()), vec![1, 2, 4, 6, 8]);
    }

    #[test]
    fn micro_workload_runs_in_two_modes() {
        let w = workloads::micro::while_bench(2, 60);
        let profile = MachineProfile::generic(4);
        let gil = run_workload(&w, RuntimeMode::Gil, &profile);
        let htm = run_workload(&w, RuntimeMode::Htm { length: LengthPolicy::Fixed(16) }, &profile);
        assert_eq!(gil.stdout, htm.stdout);
        assert_eq!(gil.stdout, workloads::micro::expected_output(2, 60));
    }
}
