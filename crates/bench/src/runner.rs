//! `bench::runner` — shared config-sweep scaffolding for every bench
//! binary.
//!
//! All twelve bins (`fig4_micro` … `extensions`, `chaos`, `selfperf`)
//! used to hand-roll the same three things: flag parsing, a serial loop
//! over their sweep points, and `RunReport` collection for
//! `--report-json`. This module centralizes them on top of the
//! [`crate::pool`] worker pool:
//!
//! * [`init_from_args`] — parses `--jobs <N|auto>` (default `1`; the
//!   `HTMGIL_JOBS` environment variable supplies a default the flag
//!   overrides) and delegates `--report-json <path>` to
//!   [`crate::reporting`]. Binaries call it first thing in `main`.
//! * [`sweep`] — fans the points of one sweep through the pool at the
//!   configured pool size and returns results in submission order.
//!   [`crate::reporting::record`] calls made inside a point (every
//!   [`crate::run_workload`] makes one) are captured per point and
//!   flushed to the collector in submission order, so `--report-json`
//!   documents are byte-identical at any `--jobs` value.
//! * Progress lines (one per completed point, to stderr, enabled only
//!   for real binaries via [`init_from_args`]) — stdout stays reserved
//!   for the paper-style tables and is identical at any pool size.
//!
//! The determinism contract is enforced by `tests/pool_determinism.rs`
//! (fig4/fig8/chaos artifacts at `--jobs 1` vs `--jobs 4` vs the
//! committed goldens) and `crates/bench/tests/runner_proptest.rs`
//! (ordering, loss/duplication, panic identity on random point sets).

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

use crate::pool::{self, SweepError};
use crate::reporting;

/// Configured pool size (process-global, like the reporting collector).
static JOBS: AtomicUsize = AtomicUsize::new(1);
/// Whether completed points emit stderr progress lines (binaries only).
static PROGRESS: AtomicBool = AtomicBool::new(false);

/// Resolve `auto`: one worker per available hardware thread.
pub fn auto_jobs() -> usize {
    std::thread::available_parallelism().map(std::num::NonZeroUsize::get).unwrap_or(1)
}

/// Set the pool size used by [`sweep`] (clamped to at least 1).
pub fn set_jobs(n: usize) {
    JOBS.store(n.max(1), Ordering::Relaxed);
}

/// Pool size [`sweep`] will use.
pub fn jobs() -> usize {
    JOBS.load(Ordering::Relaxed)
}

/// Parse the shared bench flags. `--jobs N` / `--jobs=N` / `--jobs auto`
/// picks the pool size (default: `HTMGIL_JOBS`, else 1); `--report-json`
/// is handled by [`reporting::init_from_args`]. Call first in `main`.
pub fn init_from_args() {
    reporting::init_from_args();
    PROGRESS.store(true, Ordering::Relaxed);
    if let Ok(v) = std::env::var("HTMGIL_JOBS") {
        if !v.is_empty() {
            set_jobs(parse_jobs(&v));
        }
    }
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        if arg == "--jobs" {
            match args.next() {
                Some(v) => set_jobs(parse_jobs(&v)),
                None => {
                    eprintln!("error: --jobs requires a count or 'auto'");
                    std::process::exit(2);
                }
            }
        } else if let Some(v) = arg.strip_prefix("--jobs=") {
            set_jobs(parse_jobs(v));
        }
    }
}

fn parse_jobs(v: &str) -> usize {
    if v == "auto" {
        auto_jobs()
    } else {
        match v.parse::<usize>() {
            Ok(n) if n >= 1 => n,
            _ => {
                eprintln!("error: --jobs takes a positive count or 'auto', got {v:?}");
                std::process::exit(2);
            }
        }
    }
}

/// Run one sweep's points through the pool at an explicit pool size and
/// return the results in submission order. Captured
/// [`reporting::record`] calls flush in submission order too. A panic
/// inside a point cancels the queue and surfaces as `Err` carrying the
/// point's identity.
pub fn try_sweep_with_jobs<P, R>(
    jobs: usize,
    title: &str,
    points: &[P],
    label: impl Fn(&P) -> String + Sync,
    run: impl Fn(&P) -> R + Sync,
) -> Result<Vec<R>, SweepError>
where
    P: Sync,
    R: Send,
{
    let total = points.len();
    let captured = pool::try_map_ordered(
        jobs,
        points,
        &label,
        |_, p| reporting::capture(|| run(p)),
        |completed, index| {
            if PROGRESS.load(Ordering::Relaxed) {
                eprintln!("  [{completed:>3}/{total}] {title}: {}", label(&points[index]));
            }
        },
    )?;
    let mut out = Vec::with_capacity(captured.len());
    for (r, records) in captured {
        reporting::flush_captured(records);
        out.push(r);
    }
    Ok(out)
}

/// [`try_sweep_with_jobs`] at the configured `--jobs` size, panicking
/// (with the point's identity) if any point panicked — sweep points
/// already treat failed runs as bugs.
pub fn sweep<P, R>(
    title: &str,
    points: &[P],
    label: impl Fn(&P) -> String + Sync,
    run: impl Fn(&P) -> R + Sync,
) -> Vec<R>
where
    P: Sync,
    R: Send,
{
    try_sweep_with_jobs(jobs(), title, points, label, run)
        .unwrap_or_else(|e| panic!("sweep '{title}': {e}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jobs_parse_accepts_counts_and_auto() {
        assert_eq!(parse_jobs("1"), 1);
        assert_eq!(parse_jobs("12"), 12);
        assert!(parse_jobs("auto") >= 1);
    }

    #[test]
    fn sweep_is_ordered_at_explicit_pool_sizes() {
        let points: Vec<u64> = (0..12).collect();
        for jobs in [1, 4] {
            let out =
                try_sweep_with_jobs(jobs, "t", &points, |p| p.to_string(), |p| p + 100).unwrap();
            assert_eq!(out, (100..112).collect::<Vec<u64>>());
        }
    }
}
