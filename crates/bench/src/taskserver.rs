//! Task-server latency sweep (library part).
//!
//! Sweeps the [`workloads::taskserver`] scenario over client count ×
//! queue configuration × runtime mode on the zEC12 profile and reports
//! the latency percentiles the scenario exists to measure: end-to-end
//! (enqueue → complete) and queue-wait (enqueue → dequeue) p50/p90/p99/
//! p999 in simulated cycles, plus the queue-depth/shed time series.
//!
//! The full sweep pushes ≥1M simulated requests through every point —
//! percentile tails mean nothing at micro-benchmark scale — so it is the
//! most expensive binary in the suite (tens of minutes serial; use
//! `--jobs`). `HTMGIL_QUICK=1` shrinks it to a smoke slice that also
//! covers the shedding policy.
//!
//! All points are independent, so the sweep fans out through
//! [`crate::runner::sweep`]; the document is assembled from the ordered
//! results and contains no wall-clock values, making
//! `taskserver_latency.json` byte-identical at any `--jobs` value —
//! `tests/pool_determinism.rs` asserts that on the quick slice.
//!
//! The `taskserver` binary wraps [`latency_sweep`] and writes
//! `bench-results/taskserver_latency.json`.

use htm_gil_core::{Json, LengthPolicy, RunReport, RuntimeMode};
use machine_sim::MachineProfile;
use workloads::taskserver::{expected_stdout, taskserver};

use crate::{run_workload, runner, throughput_of};

/// The runtime modes of the paper's server evaluation: the GIL baseline,
/// static TLE at the paper's fixed length, and the adaptive policy.
pub const MODES: [RuntimeMode; 3] = [
    RuntimeMode::Gil,
    RuntimeMode::Htm { length: LengthPolicy::Fixed(16) },
    RuntimeMode::Htm { length: LengthPolicy::Dynamic },
];

/// Client-count axis. Workers are provisioned at half the client count
/// (a client submits, waits on its connection, and submits again, so a
/// 2:1 ratio keeps both sides busy without starving either).
fn client_counts(q: bool) -> Vec<usize> {
    if q {
        vec![2, 4]
    } else {
        vec![4, 8, 12]
    }
}

/// Queue-bound axis: `(qbound, shed)`. The full sweep contrasts a tight
/// bound (heavy backpressure) with a loose one; the quick slice swaps
/// the loose point for a tiny shedding queue so the drop path stays
/// exercised in CI.
fn queue_configs(q: bool) -> Vec<(usize, bool)> {
    if q {
        vec![(2, true), (8, false)]
    } else {
        vec![(64, false), (512, false)]
    }
}

/// Tasks per point: ≥1M simulated requests in the full sweep, divisible
/// by every client count on the axis.
fn tasks_per_point(q: bool) -> usize {
    if q {
        504
    } else {
        1_008_000
    }
}

/// One sweep point.
struct Point {
    clients: usize,
    workers: usize,
    qbound: usize,
    shed: bool,
    mode: RuntimeMode,
}

fn point_label(p: &Point) -> String {
    let policy = if p.shed { "shed" } else { "block" };
    format!("c{} q{}/{policy} {}", p.clients, p.qbound, p.mode.label())
}

/// Run one point and fold its report into the artifact record. Non-shed
/// points are checked against the mode-independent expected output — a
/// lost or duplicated task fails the sweep, not just a test.
fn run_point(p: &Point, tasks: usize) -> Json {
    let profile = MachineProfile::zec12();
    let w = taskserver(p.clients, p.workers, p.qbound, tasks, p.shed);
    let r = run_workload(&w, p.mode, &profile);
    if !p.shed {
        assert_eq!(
            r.stdout,
            expected_stdout(tasks),
            "{}: task checksum diverged (lost or duplicated work)",
            point_label(p)
        );
    }
    let tl = r.task_latency.as_ref().expect("taskserver must report task latency");
    Json::obj()
        .field("clients", p.clients)
        .field("workers", p.workers)
        .field("qbound", p.qbound)
        .field("shed", p.shed)
        .field("mode", p.mode.label())
        .field("tasks", tasks as u64)
        .field("elapsed_cycles", r.elapsed_cycles)
        .field("throughput", throughput_of(&w, &r))
        .field("total_aborts", r.htm.total_aborts())
        .field("gil_acquisitions", r.gil_acquisitions)
        .field("task_latency", tl.to_json())
}

fn percentile(point: &Json, hist: &str, p: &str) -> u64 {
    point
        .get("task_latency")
        .and_then(|tl| tl.get(hist))
        .and_then(|h| h.get(p))
        .and_then(Json::as_u64)
        .unwrap_or(0)
}

/// Run the whole sweep, print a per-point percentile table, and return
/// the `taskserver_latency.json` document.
pub fn latency_sweep(q: bool) -> Json {
    let tasks = tasks_per_point(q);
    let mut points = Vec::new();
    for &clients in &client_counts(q) {
        for &(qbound, shed) in &queue_configs(q) {
            for mode in MODES {
                points.push(Point { clients, workers: (clients / 2).max(1), qbound, shed, mode });
            }
        }
    }

    let results = runner::sweep("taskserver", &points, point_label, |p| run_point(p, tasks));

    println!("== taskserver: latency percentiles ({tasks} tasks/point, cycles) ==");
    println!(
        "  {:<24} {:>12} {:>12} {:>12} {:>12} {:>8}",
        "point", "e2e p50", "e2e p99", "queue p50", "queue p99", "shed"
    );
    for (p, rec) in points.iter().zip(&results) {
        println!(
            "  {:<24} {:>12} {:>12} {:>12} {:>12} {:>8}",
            point_label(p),
            percentile(rec, "e2e", "p50"),
            percentile(rec, "e2e", "p99"),
            percentile(rec, "queue_wait", "p50"),
            percentile(rec, "queue_wait", "p99"),
            rec.get("task_latency")
                .and_then(|tl| tl.get("shed"))
                .and_then(Json::as_u64)
                .unwrap_or(0),
        );
    }

    Json::obj()
        .field("schema", "htm-gil-taskserver-latency/v1")
        .field("machine", MachineProfile::zec12().name)
        .field("quick", q)
        .field("tasks_per_point", tasks as u64)
        .field("points", results)
}

/// Convenience for tests: one taskserver report at a fixed point.
pub fn sample_report(mode: RuntimeMode) -> RunReport {
    let profile = MachineProfile::zec12();
    let w = taskserver(2, 1, 4, 24, false);
    run_workload(&w, mode, &profile)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_axis_task_counts_divide() {
        for q in [false, true] {
            let tasks = tasks_per_point(q);
            assert!(q || tasks >= 1_000_000, "full sweep must push >=1M requests per point");
            for c in client_counts(q) {
                assert_eq!(tasks % c, 0, "{tasks} tasks must divide among {c} clients");
            }
        }
    }

    #[test]
    fn point_labels_are_unique() {
        let mut labels: Vec<String> = Vec::new();
        for &clients in &client_counts(true) {
            for &(qbound, shed) in &queue_configs(true) {
                for mode in MODES {
                    labels.push(point_label(&Point {
                        clients,
                        workers: (clients / 2).max(1),
                        qbound,
                        shed,
                        mode,
                    }));
                }
            }
        }
        let n = labels.len();
        labels.sort();
        labels.dedup();
        assert_eq!(labels.len(), n, "duplicate sweep labels");
    }
}
