//! Figure 9: scalability of HTM-dynamic (zEC12) vs a JRuby-like
//! fine-grained-locking VM vs the application-inherent limit (Java-NPB
//! analogue: the "Ideal" mode), each normalized to its own 1-thread run.
//!
//! Shape target: HTM-dynamic tracks the Ideal mode's per-benchmark
//! ordering (the paper's point — remaining differences are the programs'
//! own scalability), and the average at 12 threads lands near the paper's
//! 3.6× (HTM) / 3.5× (JRuby).

use bench::{print_panel, quick, run_workload, runner, thread_counts, write_csv};
use htm_gil_core::{LengthPolicy, RunReport, RuntimeMode};
use htm_gil_stats::{geomean, Series, SeriesSet};
use machine_sim::MachineProfile;

fn main() {
    bench::runner::init_from_args();
    run();
    bench::reporting::finalize();
}

fn run() {
    let scale = if quick() { 1 } else { 8 };
    let cases: [(&str, RuntimeMode, MachineProfile); 3] = [
        (
            "HTM-dynamic (zEC12)",
            RuntimeMode::Htm { length: LengthPolicy::Dynamic },
            MachineProfile::zec12(),
        ),
        // JRuby and the Java NPB ran on a 12-core Xeon X5670 (no SMT) in
        // the paper; a 12-core generic profile plays that machine.
        ("JRuby-like (12-core x86)", RuntimeMode::FineGrained, MachineProfile::generic(12)),
        ("Ideal VM (12-core x86)", RuntimeMode::Ideal, MachineProfile::generic(12)),
    ];
    let mut final_speedups: Vec<(String, Vec<f64>)> = Vec::new();
    for (label, mode, profile) in cases {
        let threads = if quick() { vec![1, 2, 4] } else { thread_counts(&profile) };
        let title = format!("Fig.9 scalability — {label}");
        // Per kernel: one 1-thread base run plus one run per thread count,
        // all independent — enumerate them flat (kernel-major, base
        // first, matching the old serial order) and fan out.
        let kernels: Vec<&'static str> =
            workloads::npb_all(1, scale).iter().map(|w| w.name).collect();
        let runs_per_kernel = 1 + threads.len();
        let points: Vec<(&'static str, usize)> = kernels
            .iter()
            .flat_map(|&k| std::iter::once((k, 1)).chain(threads.iter().map(move |&n| (k, n))))
            .collect();
        let results = runner::sweep(
            &title,
            &points,
            |&(k, n)| format!("{k} t={n}"),
            |&(k, n)| elapsed(&run_workload(&rebuild(k, n, scale), mode, &profile)),
        );
        let mut set = SeriesSet::new(title, "threads", "throughput (1 = 1 thread, same config)");
        let mut at_max = Vec::new();
        for (name, chunk) in kernels.iter().zip(results.chunks(runs_per_kernel)) {
            let mut s = Series::new(*name);
            let base = chunk[0];
            for (&n, &e) in threads.iter().zip(&chunk[1..]) {
                s.push(n as f64, base as f64 / e as f64);
            }
            at_max.push(s.points.last().map(|&(_, y)| y).unwrap_or(1.0));
            set.add(s);
        }
        print_panel(&set);
        write_csv(
            &format!("fig9_{}", label.to_lowercase().replace([' ', '(', ')', '-'], "_")),
            &set,
        );
        final_speedups.push((label.to_string(), at_max));
    }
    println!("\n== Fig.9 summary: geometric-mean NPB speedup at max threads ==");
    for (label, v) in &final_speedups {
        println!("  {label}: {:.2}x (paper: HTM 3.6x, JRuby 3.5x average)", geomean(v));
    }
}

fn elapsed(r: &RunReport) -> u64 {
    r.elapsed_cycles.max(1)
}

fn rebuild(name: &str, threads: usize, scale: usize) -> workloads::Workload {
    match name {
        "BT" => workloads::npb::bt(threads, scale),
        "CG" => workloads::npb::cg(threads, scale),
        "FT" => workloads::npb::ft(threads, scale),
        "IS" => workloads::npb::is(threads, scale),
        "LU" => workloads::npb::lu(threads, scale),
        "MG" => workloads::npb::mg(threads, scale),
        "SP" => workloads::npb::sp(threads, scale),
        other => panic!("unknown kernel {other}"),
    }
}
