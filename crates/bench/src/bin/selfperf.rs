//! Self-performance benchmark: wall-clock throughput of the **simulator
//! itself**, not of the simulated machine.
//!
//! Every figure sweep in this repo is bounded by how fast `TxMemory` can
//! push simulated words around, so this binary is the perf trajectory the
//! other benches read their budgets from. It runs four fixed
//! configurations (the While micro-benchmark, NPB CG, the WEBrick server
//! model, and the task server — compute-, conflict-, I/O- and
//! queue-shaped workloads) at 12/12/6/12 threads on the zEC12 profile
//! under HTM-dynamic, repeats each one several times, takes the median
//! wall time, and writes `BENCH_selfperf.json` at the repo root:
//!
//! * `current` — this build's medians, plus simulated bytecodes/sec and
//!   simulated words/sec derived from the (deterministic) run report;
//! * `baseline` — the same configurations measured at the commit preceding
//!   the ownership-directory rewrite of `TxMemory` (set-scan conflict
//!   detection), so `speedup_vs_baseline` records what the rewrite bought.
//!
//! `--gate` turns the binary into a regression gate instead: it measures
//! the same configurations, compares each one's simulated bytecodes/sec
//! against the **committed** `BENCH_selfperf.json`, writes the comparison
//! to `bench-results/selfperf_gate.json` (never touching the committed
//! file), and exits non-zero when any configuration regresses by more
//! than the tolerance (`HTMGIL_SELFPERF_TOLERANCE`, default 0.15). The
//! gate compares the *best* repetition — the committed number states what
//! the build can reach, and a regression gate asks whether this build can
//! still reach it; medians would flake on loaded CI runners without
//! catching any additional real regressions.
//!
//! `HTMGIL_QUICK=1` shrinks the workloads and the repetition count for
//! smoke runs; quick numbers are labelled as such and are not comparable
//! with the recorded baseline (and are rejected in `--gate` mode).

use std::time::Instant;

use bench::{quick, run_workload, runner, vm_config_for};
use htm_gil_core::{ExecConfig, Json, LengthPolicy, RunReport, RuntimeMode};
use machine_sim::MachineProfile;
use workloads::Workload;

/// Pre-rewrite wall-clock medians in milliseconds, measured at commit
/// 50f6038 (set-scan `doom_conflicting`, allocating `tbegin`) with a
/// release build of this same binary on the machine that produced the
/// committed `BENCH_selfperf.json`. Full (non-quick) configurations only.
const BASELINE_WALL_MS: &[(&str, f64)] =
    &[("while_12t_zec12", 365.9), ("cg_12t_zec12", 1150.9), ("webrick_6c_zec12", 1136.8)];

/// The fixed measurement configurations. Thread/scale choices mirror the
/// figure sweeps' most expensive points (fig4/fig5 at 12 threads on zEC12,
/// fig7 at 6 clients), where simulator wall-clock hurts the most.
fn configs(q: bool) -> Vec<(&'static str, Workload)> {
    let scale = if q { 1 } else { 4 };
    let iters = if q { 150 } else { 2_000 };
    let requests = if q { 48 } else { 600 };
    let tasks = if q { 96 } else { 1_200 };
    vec![
        ("while_12t_zec12", workloads::micro::while_bench(12, iters)),
        ("cg_12t_zec12", workloads::npb::cg(12, scale)),
        ("webrick_6c_zec12", workloads::webrick::webrick(6, requests)),
        // 8 clients + 4 workers = 12 simulated threads: the queue-heavy
        // mutex/park/wake shape the figure sweeps don't otherwise cover.
        ("taskserver_12t_zec12", workloads::taskserver::taskserver(8, 4, 64, tasks, false)),
    ]
}

fn median(samples: &mut [f64]) -> f64 {
    samples.sort_by(f64::total_cmp);
    samples[samples.len() / 2]
}

struct Measurement {
    name: &'static str,
    /// Median wall time over the repetitions.
    wall_ms: f64,
    /// Fastest repetition (the gate's comparison point).
    best_ms: f64,
    report: RunReport,
}

fn measure(name: &'static str, w: &Workload, reps: usize) -> Measurement {
    let profile = MachineProfile::zec12();
    let mode = RuntimeMode::Htm { length: LengthPolicy::Dynamic };
    let mut walls = Vec::with_capacity(reps);
    let mut report = None;
    for _ in 0..reps {
        let start = Instant::now();
        let r = run_workload(w, mode, &profile);
        walls.push(start.elapsed().as_secs_f64() * 1e3);
        report = Some(r);
    }
    let best_ms = walls.iter().copied().fold(f64::INFINITY, f64::min);
    Measurement { name, wall_ms: median(&mut walls), best_ms, report: report.expect("reps >= 1") }
}

/// Simulated bytecodes retired by one (deterministic) run of a config.
fn sim_bytecodes(r: &RunReport) -> u64 {
    r.committed_insns + r.wasted_insns
}

/// Fraction of interpreter word accesses served by the leased TxMemory
/// fast path (0.0 when leases are disabled or never engage).
fn lease_hit_rate(r: &RunReport) -> f64 {
    let attempts = r.htm.lease_hits + r.htm.lease_misses;
    if attempts == 0 {
        0.0
    } else {
        r.htm.lease_hits as f64 / attempts as f64
    }
}

fn run_measurements(q: bool, reps: usize) -> Vec<Measurement> {
    // Warm up allocator/page cache once so rep 1 is comparable to rep N.
    {
        let w = workloads::micro::while_bench(2, 50);
        let profile = MachineProfile::zec12();
        let cfg = ExecConfig::new(RuntimeMode::Gil, &profile);
        bench::run_workload_with(&w, &profile, cfg, vm_config_for(w.threads));
    }
    let cfgs = configs(q);
    runner::sweep(
        "selfperf",
        &cfgs,
        |(name, _)| name.to_string(),
        |&(name, ref w)| measure(name, w, reps),
    )
}

/// `--gate`: compare against the committed `BENCH_selfperf.json` and fail
/// on regression past the tolerance. Never rewrites the committed file.
fn run_gate() -> i32 {
    let jobs = runner::jobs();
    if jobs != 1 {
        eprintln!("error: --gate wall times are only comparable at --jobs 1 (got {jobs})");
        return 2;
    }
    if quick() {
        eprintln!("error: --gate compares full-size runs; unset HTMGIL_QUICK");
        return 2;
    }
    let tolerance = match std::env::var("HTMGIL_SELFPERF_TOLERANCE") {
        Ok(v) => match v.parse::<f64>() {
            Ok(t) if (0.0..1.0).contains(&t) => t,
            _ => {
                eprintln!(
                    "error: HTMGIL_SELFPERF_TOLERANCE must be a fraction in [0, 1), got {v:?}"
                );
                return 2;
            }
        },
        Err(_) => 0.15,
    };
    let committed_path = bench::repo_root().join("BENCH_selfperf.json");
    let committed = match std::fs::read_to_string(&committed_path)
        .map_err(|e| e.to_string())
        .and_then(|text| Json::parse(&text))
    {
        Ok(j) => j,
        Err(e) => {
            eprintln!("error: cannot read committed {}: {e}", committed_path.display());
            return 2;
        }
    };
    let reps = 7; // more than the recording run: the gate gets one shot
    let measurements = run_measurements(false, reps);

    println!(
        "== selfperf gate: best of {reps} vs committed (tolerance {:.0}%) ==",
        tolerance * 100.0
    );
    let mut results = Json::obj();
    let mut all_pass = true;
    for m in &measurements {
        let committed_bps = committed
            .get("current")
            .and_then(|c| c.get(m.name))
            .and_then(|e| e.get("sim_bytecodes_per_sec"))
            .and_then(Json::as_f64);
        let measured_bps = sim_bytecodes(&m.report) as f64 / (m.best_ms / 1e3);
        let (ratio, pass) = match committed_bps {
            Some(c) if c > 0.0 => {
                let ratio = measured_bps / c;
                (Some(ratio), ratio >= 1.0 - tolerance)
            }
            // A config the committed file has never measured cannot
            // regress; it starts gating once its numbers are recorded.
            _ => (None, true),
        };
        all_pass &= pass;
        println!(
            "  {:<20} {:>12.0} bytecodes/s  committed {:>12}  {}",
            m.name,
            measured_bps,
            committed_bps.map(|c| format!("{c:.0}")).unwrap_or_else(|| "-".into()),
            match (ratio, pass) {
                (Some(r), true) => format!("{:.2}x  ok", r),
                (Some(r), false) => format!("{:.2}x  REGRESSION", r),
                (None, _) => "new config (no committed number)".into(),
            }
        );
        let mut entry = Json::obj()
            .field("measured_bytecodes_per_sec", measured_bps)
            .field("measured_best_wall_ms", m.best_ms)
            .field("measured_median_wall_ms", m.wall_ms)
            .field("lease_hit_rate", lease_hit_rate(&m.report))
            .field("pass", pass);
        if let Some(c) = committed_bps {
            entry = entry.field("committed_bytecodes_per_sec", c);
        }
        if let Some(r) = ratio {
            entry = entry.field("ratio", r);
        }
        results = results.field(m.name, entry);
    }
    let doc = Json::obj()
        .field("schema", "htm-gil-selfperf-gate/v1")
        .field("tolerance", tolerance)
        .field("reps", reps as u64)
        .field("jobs", jobs as u64)
        .field("pass", all_pass)
        .field("configs", results);
    let out = bench::repo_root().join("bench-results").join("selfperf_gate.json");
    std::fs::create_dir_all(out.parent().expect("bench-results parent")).expect("mkdir");
    std::fs::write(&out, doc.to_pretty() + "\n").expect("write selfperf_gate.json");
    println!("  [json] {}", out.display());
    if all_pass {
        0
    } else {
        eprintln!(
            "selfperf gate FAILED: a config regressed more than {:.0}% below the committed \
             throughput (override with HTMGIL_SELFPERF_TOLERANCE)",
            tolerance * 100.0
        );
        1
    }
}

fn main() {
    bench::runner::init_from_args();
    if std::env::args().skip(1).any(|a| a == "--gate") {
        let code = run_gate();
        bench::reporting::finalize();
        std::process::exit(code);
    }
    let q = quick();
    let reps = if q { 3 } else { 5 };
    let jobs = runner::jobs();
    // The configs fan out through the shared runner like any other
    // sweep (reps stay serial inside each point so a median means
    // something). Concurrent points contend for cores, so wall times taken
    // at --jobs > 1 are only comparable with other runs at the same pool
    // size — the JSON records `jobs`, and the baseline comparison (which
    // was measured serially) is reported at --jobs 1 only.
    let measurements = run_measurements(q, reps);

    let mut current = Json::obj();
    println!("== selfperf: simulator wall-clock (median of {reps}, jobs={jobs}) ==");
    for m in measurements {
        let wall_s = m.wall_ms / 1e3;
        let insns = sim_bytecodes(&m.report);
        let words = m.report.htm.total_accesses();
        let bytecodes_per_sec = insns as f64 / wall_s;
        let words_per_sec = words as f64 / wall_s;
        let baseline_ms = BASELINE_WALL_MS
            .iter()
            .find(|(n, _)| *n == m.name)
            .map(|&(_, ms)| ms)
            .filter(|&ms| ms > 0.0 && !q && jobs == 1);
        let speedup = baseline_ms.map(|b| b / m.wall_ms);
        let hit_rate = lease_hit_rate(&m.report);
        println!(
            "  {:<18} {:>9.1} ms  {:>12.0} bytecodes/s  {:>12.0} words/s  lease {:>5.1}%{}",
            m.name,
            m.wall_ms,
            bytecodes_per_sec,
            words_per_sec,
            hit_rate * 100.0,
            speedup.map(|s| format!("  ({s:.2}x vs baseline)")).unwrap_or_default()
        );
        let mut entry = Json::obj()
            .field("wall_ms", m.wall_ms)
            .field("sim_bytecodes_per_sec", bytecodes_per_sec)
            .field("sim_words_per_sec", words_per_sec)
            .field("sim_elapsed_cycles", m.report.elapsed_cycles)
            .field("lease_hit_rate", hit_rate);
        if let Some(b) = baseline_ms {
            entry = entry.field("baseline_wall_ms", b);
        }
        if let Some(s) = speedup {
            entry = entry.field("speedup_vs_baseline", s);
        }
        current = current.field(m.name, entry);
    }

    let baseline = BASELINE_WALL_MS
        .iter()
        .fold(Json::obj(), |acc, &(name, ms)| acc.field(name, Json::obj().field("wall_ms", ms)));
    let doc = Json::obj()
        .field("schema", "htm-gil-selfperf/v1")
        .field("quick", q)
        .field("reps", reps as u64)
        .field("jobs", jobs as u64)
        .field("machine_profile", "zEC12")
        .field("mode", "HTM-dynamic")
        .field(
            "baseline",
            Json::obj()
                .field("commit", "50f6038")
                .field("description", "pre-directory TxMemory: O(threads) set-scan conflict detection, allocating tbegin")
                .field("configs", baseline),
        )
        .field("current", current);

    let path = bench::repo_root().join("BENCH_selfperf.json");
    std::fs::write(&path, doc.to_pretty() + "\n").expect("write BENCH_selfperf.json");
    println!("  [json] {}", path.display());
    bench::reporting::finalize();
}
