//! Self-performance benchmark: wall-clock throughput of the **simulator
//! itself**, not of the simulated machine.
//!
//! Every figure sweep in this repo is bounded by how fast `TxMemory` can
//! push simulated words around, so this binary is the perf trajectory the
//! other benches read their budgets from. It runs four fixed
//! configurations (the While micro-benchmark, NPB CG, the WEBrick server
//! model, and the task server — compute-, conflict-, I/O- and
//! queue-shaped workloads) at 12/12/6/12 threads on the zEC12 profile
//! under HTM-dynamic, repeats each one several times, takes the median
//! wall time, and writes `BENCH_selfperf.json` at the repo root:
//!
//! * `current` — this build's medians, plus simulated bytecodes/sec and
//!   simulated words/sec derived from the (deterministic) run report;
//! * `baseline` — the same configurations measured at the commit preceding
//!   the ownership-directory rewrite of `TxMemory` (set-scan conflict
//!   detection), so `speedup_vs_baseline` records what the rewrite bought.
//!
//! `HTMGIL_QUICK=1` shrinks the workloads and the repetition count for
//! smoke runs; quick numbers are labelled as such and are not comparable
//! with the recorded baseline.

use std::time::Instant;

use bench::{quick, run_workload, runner, vm_config_for};
use htm_gil_core::{ExecConfig, Json, LengthPolicy, RunReport, RuntimeMode};
use machine_sim::MachineProfile;
use workloads::Workload;

/// Pre-rewrite wall-clock medians in milliseconds, measured at commit
/// 50f6038 (set-scan `doom_conflicting`, allocating `tbegin`) with a
/// release build of this same binary on the machine that produced the
/// committed `BENCH_selfperf.json`. Full (non-quick) configurations only.
const BASELINE_WALL_MS: &[(&str, f64)] =
    &[("while_12t_zec12", 365.9), ("cg_12t_zec12", 1150.9), ("webrick_6c_zec12", 1136.8)];

/// The fixed measurement configurations. Thread/scale choices mirror the
/// figure sweeps' most expensive points (fig4/fig5 at 12 threads on zEC12,
/// fig7 at 6 clients), where simulator wall-clock hurts the most.
fn configs(q: bool) -> Vec<(&'static str, Workload)> {
    let scale = if q { 1 } else { 4 };
    let iters = if q { 150 } else { 2_000 };
    let requests = if q { 48 } else { 600 };
    let tasks = if q { 96 } else { 1_200 };
    vec![
        ("while_12t_zec12", workloads::micro::while_bench(12, iters)),
        ("cg_12t_zec12", workloads::npb::cg(12, scale)),
        ("webrick_6c_zec12", workloads::webrick::webrick(6, requests)),
        // 8 clients + 4 workers = 12 simulated threads: the queue-heavy
        // mutex/park/wake shape the figure sweeps don't otherwise cover.
        ("taskserver_12t_zec12", workloads::taskserver::taskserver(8, 4, 64, tasks, false)),
    ]
}

fn median(samples: &mut [f64]) -> f64 {
    samples.sort_by(f64::total_cmp);
    samples[samples.len() / 2]
}

struct Measurement {
    name: &'static str,
    wall_ms: f64,
    report: RunReport,
}

fn measure(name: &'static str, w: &Workload, reps: usize) -> Measurement {
    let profile = MachineProfile::zec12();
    let mode = RuntimeMode::Htm { length: LengthPolicy::Dynamic };
    let mut walls = Vec::with_capacity(reps);
    let mut report = None;
    for _ in 0..reps {
        let start = Instant::now();
        let r = run_workload(w, mode, &profile);
        walls.push(start.elapsed().as_secs_f64() * 1e3);
        report = Some(r);
    }
    Measurement { name, wall_ms: median(&mut walls), report: report.expect("reps >= 1") }
}

fn main() {
    bench::runner::init_from_args();
    let q = quick();
    let reps = if q { 3 } else { 5 };
    // Warm up allocator/page cache once so rep 1 is comparable to rep N.
    {
        let w = workloads::micro::while_bench(2, 50);
        let profile = MachineProfile::zec12();
        let cfg = ExecConfig::new(RuntimeMode::Gil, &profile);
        bench::run_workload_with(&w, &profile, cfg, vm_config_for(w.threads));
    }

    // The three configs fan out through the shared runner like any other
    // sweep (reps stay serial inside each point so a median means
    // something). Concurrent points contend for cores, so wall times taken
    // at --jobs > 1 are only comparable with other runs at the same pool
    // size — the JSON records `jobs`, and the baseline comparison (which
    // was measured serially) is reported at --jobs 1 only.
    let jobs = runner::jobs();
    let cfgs = configs(q);
    let measurements = runner::sweep(
        "selfperf",
        &cfgs,
        |(name, _)| name.to_string(),
        |&(name, ref w)| measure(name, w, reps),
    );

    let mut current = Json::obj();
    println!("== selfperf: simulator wall-clock (median of {reps}, jobs={jobs}) ==");
    for m in measurements {
        let wall_s = m.wall_ms / 1e3;
        let insns = m.report.committed_insns + m.report.wasted_insns;
        let words = m.report.htm.total_accesses();
        let bytecodes_per_sec = insns as f64 / wall_s;
        let words_per_sec = words as f64 / wall_s;
        let baseline_ms = BASELINE_WALL_MS
            .iter()
            .find(|(n, _)| *n == m.name)
            .map(|&(_, ms)| ms)
            .filter(|&ms| ms > 0.0 && !q && jobs == 1);
        let speedup = baseline_ms.map(|b| b / m.wall_ms);
        println!(
            "  {:<18} {:>9.1} ms  {:>12.0} bytecodes/s  {:>12.0} words/s{}",
            m.name,
            m.wall_ms,
            bytecodes_per_sec,
            words_per_sec,
            speedup.map(|s| format!("  ({s:.2}x vs baseline)")).unwrap_or_default()
        );
        let mut entry = Json::obj()
            .field("wall_ms", m.wall_ms)
            .field("sim_bytecodes_per_sec", bytecodes_per_sec)
            .field("sim_words_per_sec", words_per_sec)
            .field("sim_elapsed_cycles", m.report.elapsed_cycles);
        if let Some(b) = baseline_ms {
            entry = entry.field("baseline_wall_ms", b);
        }
        if let Some(s) = speedup {
            entry = entry.field("speedup_vs_baseline", s);
        }
        current = current.field(m.name, entry);
    }

    let baseline = BASELINE_WALL_MS
        .iter()
        .fold(Json::obj(), |acc, &(name, ms)| acc.field(name, Json::obj().field("wall_ms", ms)));
    let doc = Json::obj()
        .field("schema", "htm-gil-selfperf/v1")
        .field("quick", q)
        .field("reps", reps as u64)
        .field("jobs", jobs as u64)
        .field("machine_profile", "zEC12")
        .field("mode", "HTM-dynamic")
        .field(
            "baseline",
            Json::obj()
                .field("commit", "50f6038")
                .field("description", "pre-directory TxMemory: O(threads) set-scan conflict detection, allocating tbegin")
                .field("configs", baseline),
        )
        .field("current", current);

    let path = bench::repo_root().join("BENCH_selfperf.json");
    std::fs::write(&path, doc.to_pretty() + "\n").expect("write BENCH_selfperf.json");
    println!("  [json] {}", path.display());
    bench::reporting::finalize();
}
