//! Figure 5: throughput of the seven Ruby NAS Parallel Benchmarks on
//! zEC12 (1–12 threads) and Xeon E3-1275 v3 (1–8 threads), for GIL,
//! HTM-1, HTM-16, HTM-256 and HTM-dynamic, normalized to 1-thread GIL.
//!
//! Shape targets from the paper: HTM-dynamic 1.9×–4.4× at 12 threads on
//! zEC12 (best or near best); HTM-256 ≈ flat (fallback-dominated);
//! HTM-16 best on the Xeon, with an SMT cliff past 4 threads.
//!
//! `--bench NAME` limits to one kernel; `--machine zec12|xeon` to one
//! machine; `HTMGIL_QUICK=1` shrinks the sweep.

use bench::{print_panel, quick, sweep_panel, thread_counts, write_csv};
use machine_sim::MachineProfile;

fn main() {
    bench::runner::init_from_args();
    run();
    bench::reporting::finalize();
}

fn run() {
    let args: Vec<String> = std::env::args().collect();
    let only_bench =
        args.iter().position(|a| a == "--bench").and_then(|i| args.get(i + 1).cloned());
    let only_machine =
        args.iter().position(|a| a == "--machine").and_then(|i| args.get(i + 1).cloned());

    let scale = if quick() { 1 } else { 8 };
    let machines: Vec<MachineProfile> =
        [MachineProfile::zec12(), MachineProfile::xeon_e3_1275_v3()]
            .into_iter()
            .filter(|m| match &only_machine {
                Some(sel) => m.name.to_lowercase().contains(&sel.to_lowercase()),
                None => true,
            })
            .collect();
    let kernel_names = ["BT", "CG", "FT", "IS", "LU", "MG", "SP"];
    for profile in machines {
        let threads =
            if quick() { vec![1, 2, profile.hw_threads().min(4)] } else { thread_counts(&profile) };
        for name in kernel_names {
            if let Some(sel) = &only_bench {
                if !name.eq_ignore_ascii_case(sel) {
                    continue;
                }
            }
            let title = format!("Fig.5 {name} / {}", profile.name);
            let set = sweep_panel(&title, &profile, &threads, |n| build(name, n, scale));
            print_panel(&set);
            write_csv(
                &format!("fig5_{}_{}", name.to_lowercase(), profile.name.replace(' ', "_")),
                &set,
            );
        }
    }
}

fn build(name: &str, threads: usize, scale: usize) -> workloads::Workload {
    match name {
        "BT" => workloads::npb::bt(threads, scale),
        "CG" => workloads::npb::cg(threads, scale),
        "FT" => workloads::npb::ft(threads, scale),
        "IS" => workloads::npb::is(threads, scale),
        "LU" => workloads::npb::lu(threads, scale),
        "MG" => workloads::npb::mg(threads, scale),
        "SP" => workloads::npb::sp(threads, scale),
        other => panic!("unknown kernel {other}"),
    }
}
