//! Figure 6(a): the write-set-shrinking probe on the Xeon profile.
//!
//! Writes 24 KB per transaction for N iterations, then 20 KB, 16 KB and
//! 12 KB, measuring the success ratio per 100-iteration window. Against a
//! ~19 KB write budget the paper observed: 24/20 KB ≈ 0 % success, and
//! after the drop to 16 KB the ratio climbs only *gradually* (≈5 000
//! iterations) because of the CPU's overflow-learning — the behaviour our
//! predictor reproduces.

use bench::{quick, results_dir, runner};
use htm_sim::{Budgets, OverflowPredictor, TxMemory};
use machine_sim::MachineProfile;

fn main() {
    bench::runner::init_from_args();
    run();
    bench::reporting::finalize();
}

fn run() {
    // The probe is one serial trajectory — the overflow predictor's state
    // at iteration i depends on every prior iteration — so there is
    // nothing to fan out. It still goes through the runner as a
    // single-point sweep so this binary shares the others' flag handling
    // and progress reporting.
    let mut results = runner::sweep("Fig.6a", &[()], |_| "probe".into(), |_| probe());
    let (csv, totals) = results.pop().expect("one point, one result");
    let path = results_dir().join("fig6a_writeset.csv");
    std::fs::write(&path, csv).expect("write csv");
    println!("  [csv] {}", path.display());
    println!("{totals}");
}

fn probe() -> (String, String) {
    let profile = MachineProfile::xeon_e3_1275_v3();
    let iters = if quick() { 600 } else { 10_000 };
    let window = 100usize;
    let schedule = workloads::probe::schedule(&[24, 20, 16, 12], iters);
    let line_bytes = profile.cache.line_bytes;
    let line_words = profile.cache.line_words();
    // Enough memory for the largest phase.
    let max_words = 32 * 1024 / 8;
    let mut mem: TxMemory<u64> = TxMemory::new(max_words, line_words, 1, 0);
    mem.set_predictor(0, OverflowPredictor::intel(profile.htm.predictor_memory, 42));
    let budgets = Budgets {
        read_lines: profile.cache.read_set_lines(),
        write_lines: profile.cache.write_set_lines(),
    };
    println!("Fig.6a — write-set shrink probe on {}", profile.name);
    println!("write budget = {} KB", profile.cache.write_set_bytes / 1024);
    println!("{:>10} {:>8} {:>12}", "iteration", "size KB", "success %");
    let mut csv = String::from("iteration,size_kb,success_pct\n");
    let mut iteration = 0usize;
    for (size_kb, n) in schedule.phases {
        let lines = size_kb * 1024 / line_bytes;
        let mut ok_in_window = 0usize;
        let mut in_window = 0usize;
        for _ in 0..n {
            iteration += 1;
            in_window += 1;
            let mut committed = false;
            if mem.begin(0, budgets).is_ok() {
                let mut aborted = false;
                for l in 0..lines {
                    if mem.write(0, l * line_words, iteration as u64).is_err() {
                        aborted = true;
                        break;
                    }
                }
                if !aborted && mem.commit(0).is_ok() {
                    committed = true;
                }
            }
            if committed {
                ok_in_window += 1;
            }
            if in_window == window {
                let pct = 100.0 * ok_in_window as f64 / window as f64;
                // Print a sparse sample to keep the console readable.
                if iteration.is_multiple_of(window * 10) {
                    println!("{iteration:>10} {size_kb:>8} {pct:>11.1}%");
                }
                csv.push_str(&format!("{iteration},{size_kb},{pct:.2}\n"));
                ok_in_window = 0;
                in_window = 0;
            }
        }
    }
    let s = mem.stats();
    let totals = format!(
        "totals: {} begins, {} commits, {} overflow aborts, {} predictor kills",
        s.begins,
        s.commits,
        s.overflow_read + s.overflow_write,
        s.eager_predicted
    );
    (csv, totals)
}
