//! Figure 4: the While and Iterator embarrassingly parallel
//! micro-benchmarks.
//!
//! The paper reports that "the best HTM configurations for each benchmark
//! achieved an 11- to 10-fold speedup over the GIL using 12 threads on
//! zEC12" while "the GIL did not scale at all". This binary sweeps both
//! micro-benchmarks over thread counts and modes on both machines and
//! prints the best-HTM-vs-GIL speedup at full thread count. Data comes
//! from [`bench::figures::fig4_panels`], shared with the determinism test.

use bench::{print_panel, quick, write_csv};

fn main() {
    bench::runner::init_from_args();
    run();
    bench::reporting::finalize();
}

fn run() {
    for panel in bench::figures::fig4_panels(quick()) {
        print_panel(&panel.set);
        write_csv(&panel.csv_name, &panel.set);
        // Paper headline: best HTM config vs GIL at max threads.
        let max_t = panel.max_threads;
        let gil = panel.set.get("GIL").and_then(|s| s.y_at(max_t)).unwrap_or(1.0);
        let best = panel
            .set
            .series
            .iter()
            .filter(|s| s.label != "GIL")
            .filter_map(|s| s.y_at(max_t).map(|y| (s.label.clone(), y)))
            .max_by(|a, b| a.1.total_cmp(&b.1))
            .unwrap();
        println!(
            "  {} @ {} threads: best HTM = {} at {:.1}x vs GIL {:.1}x → {:.1}-fold speedup",
            panel.bench,
            max_t,
            best.0,
            best.1,
            gil,
            best.1 / gil
        );
    }
}
