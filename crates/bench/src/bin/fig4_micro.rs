//! Figure 4: the While and Iterator embarrassingly parallel
//! micro-benchmarks.
//!
//! The paper reports that "the best HTM configurations for each benchmark
//! achieved an 11- to 10-fold speedup over the GIL using 12 threads on
//! zEC12" while "the GIL did not scale at all". This binary sweeps both
//! micro-benchmarks over thread counts and modes on both machines and
//! prints the best-HTM-vs-GIL speedup at full thread count.

use bench::{print_panel, quick, sweep_panel, thread_counts, write_csv};
use machine_sim::MachineProfile;

fn main() {
    bench::reporting::init_from_args();
    run();
    bench::reporting::finalize();
}

fn run() {
    let iters = if quick() { 150 } else { 2_000 };
    for profile in [MachineProfile::zec12(), MachineProfile::xeon_e3_1275_v3()] {
        let threads = thread_counts(&profile);
        for (name, builder) in [
            ("While", workloads::micro::while_bench as fn(usize, usize) -> workloads::Workload),
            (
                "Iterator",
                workloads::micro::iterator_bench as fn(usize, usize) -> workloads::Workload,
            ),
        ] {
            let title = format!("Fig.4 {name} / {}", profile.name);
            let set = sweep_panel(&title, &profile, &threads, |n| builder(n, iters));
            print_panel(&set);
            write_csv(
                &format!("fig4_{}_{}", name.to_lowercase(), profile.name.replace(' ', "_")),
                &set,
            );
            // Paper headline: best HTM config vs GIL at max threads.
            let max_t = *threads.last().unwrap() as f64;
            let gil = set.get("GIL").and_then(|s| s.y_at(max_t)).unwrap_or(1.0);
            let best = set
                .series
                .iter()
                .filter(|s| s.label != "GIL")
                .filter_map(|s| s.y_at(max_t).map(|y| (s.label.clone(), y)))
                .max_by(|a, b| a.1.total_cmp(&b.1))
                .unwrap();
            println!(
                "  {} @ {} threads: best HTM = {} at {:.1}x vs GIL {:.1}x → {:.1}-fold speedup",
                name,
                max_t,
                best.0,
                best.1,
                gil,
                best.1 / gil
            );
        }
    }
}
