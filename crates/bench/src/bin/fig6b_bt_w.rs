//! Figure 6(b): BT with a bigger class (W) on the Xeon.
//!
//! The point of the figure: on short runs the Xeon's learning predictor
//! (Fig. 6a) keeps HTM-dynamic below HTM-16, but "we ran the benchmarks
//! longer by increasing the class sizes and confirmed HTM-dynamic was
//! equal to or better than HTM-16". This binary runs BT at a larger scale
//! and prints the HTM-dynamic/HTM-16 ratio per thread count.

use bench::{print_panel, quick, sweep_panel, write_csv};
use machine_sim::MachineProfile;

fn main() {
    bench::runner::init_from_args();
    run();
    bench::reporting::finalize();
}

fn run() {
    let profile = MachineProfile::xeon_e3_1275_v3();
    // "Class W": several times the Fig. 5 scale.
    let scale = if quick() { 3 } else { 24 };
    let threads = if quick() { vec![1, 2, 4] } else { vec![1, 2, 4, 6, 8] };
    let set =
        sweep_panel(&format!("Fig.6b BT class W / {}", profile.name), &profile, &threads, |n| {
            workloads::npb::bt(n, scale)
        });
    print_panel(&set);
    write_csv("fig6b_bt_w_xeon", &set);
    for &n in &threads {
        let dynamic = set.get("HTM-dynamic").and_then(|s| s.y_at(n as f64));
        let fixed16 = set.get("HTM-16").and_then(|s| s.y_at(n as f64));
        if let (Some(d), Some(f)) = (dynamic, fixed16) {
            println!(
                "  {n} threads: HTM-dynamic/HTM-16 = {:.2} ({})",
                d / f,
                if d >= f * 0.95 { "dynamic holds up on long runs" } else { "dynamic behind" }
            );
        }
    }
}
