//! Figure 8: abort ratios of HTM-dynamic across the NPB (both machines)
//! and the 12-thread zEC12 cycle breakdowns, plus the §5.6 abort-reason
//! investigation (read-set conflict share, allocation attribution). Data
//! comes from [`bench::figures`], shared with the determinism test.

use bench::{print_panel, quick, write_csv};

fn main() {
    bench::runner::init_from_args();
    run();
    bench::reporting::finalize();
}

fn run() {
    let q = quick();
    for panel in bench::figures::fig8_abort_panels(q) {
        print_panel(&panel.set);
        write_csv(&panel.csv_name, &panel.set);
    }
    let b = bench::figures::fig8_breakdown(q);
    println!("\n== Fig.8 cycle breakdowns, HTM-dynamic, {} threads on {} ==", b.threads, b.machine);
    println!("{}", b.table.render());
    let path = bench::results_dir().join(format!("{}.csv", b.csv_name));
    std::fs::write(&path, &b.csv).expect("write csv");
    println!("  [csv] {}", path.display());
}
