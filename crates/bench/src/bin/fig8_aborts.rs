//! Figure 8: abort ratios of HTM-dynamic across the NPB (both machines)
//! and the 12-thread zEC12 cycle breakdowns, plus the §5.6 abort-reason
//! investigation (read-set conflict share, allocation attribution).

use bench::{print_panel, quick, run_workload, thread_counts, write_csv};
use htm_gil_core::{LengthPolicy, RuntimeMode};
use htm_gil_stats::{Series, SeriesSet, Table};
use machine_sim::MachineProfile;

fn main() {
    bench::reporting::init_from_args();
    run();
    bench::reporting::finalize();
}

fn run() {
    let scale = if quick() { 1 } else { 4 };
    let dynamic = RuntimeMode::Htm { length: LengthPolicy::Dynamic };
    // Abort ratios vs threads, per machine.
    for profile in [MachineProfile::zec12(), MachineProfile::xeon_e3_1275_v3()] {
        let threads = if quick() { vec![2, 4] } else { thread_counts(&profile) };
        let mut set = SeriesSet::new(
            format!("Fig.8 abort ratios / {}", profile.name),
            "threads",
            "abort ratio %",
        );
        for w0 in workloads::npb_all(2, scale) {
            let mut s = Series::new(w0.name);
            for &n in &threads {
                if n < 2 {
                    continue; // single-threaded runs use the GIL fast path
                }
                let w = rebuild(w0.name, n, scale);
                let r = run_workload(&w, dynamic, &profile);
                s.push(n as f64, r.abort_ratio_pct());
            }
            set.add(s);
        }
        print_panel(&set);
        write_csv(&format!("fig8_abort_ratios_{}", profile.name.replace(' ', "_")), &set);
    }
    // 12-thread zEC12 cycle breakdowns + abort investigation.
    let profile = MachineProfile::zec12();
    let nthreads = if quick() { 4 } else { 12 };
    let mut table = Table::new(&[
        "bench",
        "tx-begin/end%",
        "success-tx%",
        "gil-held%",
        "aborted%",
        "gil-wait%",
        "io-wait%",
        "other%",
        "abort%",
        "read-confl%",
        "alloc-confl%",
    ]);
    let mut csv = String::from(
        "bench,tx_begin_end,success,gil_held,aborted,gil_wait,io_wait,other,abort_ratio,read_conflict_share,alloc_share\n",
    );
    for w0 in workloads::npb_all(nthreads, scale) {
        let r = run_workload(&w0, dynamic, &profile);
        let sh = r.breakdown.shares_pct();
        table.row(&[
            w0.name.to_string(),
            format!("{:.1}", sh[0].1),
            format!("{:.1}", sh[1].1),
            format!("{:.1}", sh[2].1),
            format!("{:.1}", sh[3].1),
            format!("{:.1}", sh[4].1),
            format!("{:.1}", sh[5].1),
            format!("{:.1}", sh[6].1),
            format!("{:.1}", r.abort_ratio_pct()),
            format!("{:.0}", r.htm.read_conflict_share_pct()),
            format!("{:.0}", r.allocator_conflict_share_pct()),
        ]);
        csv.push_str(&format!(
            "{},{:.2},{:.2},{:.2},{:.2},{:.2},{:.2},{:.2},{:.2},{:.2},{:.2}\n",
            w0.name,
            sh[0].1,
            sh[1].1,
            sh[2].1,
            sh[3].1,
            sh[4].1,
            sh[5].1,
            sh[6].1,
            r.abort_ratio_pct(),
            r.htm.read_conflict_share_pct(),
            r.allocator_conflict_share_pct()
        ));
    }
    println!("\n== Fig.8 cycle breakdowns, HTM-dynamic, {nthreads} threads on {} ==", profile.name);
    println!("{}", table.render());
    let path = bench::results_dir().join("fig8_breakdown_zec12.csv");
    std::fs::write(&path, csv).expect("write csv");
    println!("  [csv] {}", path.display());
}

fn rebuild(name: &str, threads: usize, scale: usize) -> workloads::Workload {
    match name {
        "BT" => workloads::npb::bt(threads, scale),
        "CG" => workloads::npb::cg(threads, scale),
        "FT" => workloads::npb::ft(threads, scale),
        "IS" => workloads::npb::is(threads, scale),
        "LU" => workloads::npb::lu(threads, scale),
        "MG" => workloads::npb::mg(threads, scale),
        "SP" => workloads::npb::sp(threads, scale),
        other => panic!("unknown kernel {other}"),
    }
}
