//! Chaos suite binary: fault-injection degradation sweep.
//!
//! Thin wrapper over [`bench::chaos::degradation_report`] (shared with
//! `tests/pool_determinism.rs`). Emits
//! `bench-results/chaos_degradation.json`: per workload, the throughput
//! relative to the GIL baseline at each injection rate. The headline
//! property — enforced numerically by `tests/chaos_suite.rs` — is
//! graceful degradation: as the rate approaches 100 %, throughput
//! converges toward the GIL baseline instead of collapsing, because the
//! watchdog stops paying per-attempt HTM overhead for doomed
//! speculation.
//!
//! `HTMGIL_QUICK=1` shrinks the sweep for smoke runs; `--jobs <N|auto>`
//! fans the (independently oracle-checked) points out across a worker
//! pool without changing a byte of the report.

use bench::{quick, results_dir};

fn main() {
    bench::runner::init_from_args();
    let report = bench::chaos::degradation_report(quick());
    let path = results_dir().join("chaos_degradation.json");
    std::fs::write(&path, report.to_pretty()).expect("write chaos report");
    println!("\n  [json] {}", path.display());
    bench::reporting::finalize();
}
