//! Chaos suite: fault-injection degradation sweep.
//!
//! Sweeps the spurious-abort injection rate from 0 % to 100 % over the
//! While/Iterator micro-benchmarks, the NPB CG kernel and the WEBrick
//! server model, running each point under HTM-dynamic with the livelock
//! watchdog armed. Every run is differentially checked against the plain
//! GIL oracle (identical stdout + identical final global-heap digest) —
//! any divergence is a bug and aborts the sweep. A second, smaller sweep
//! arms the §5.6 timer-interrupt model at decreasing intervals.
//!
//! Emits `bench-results/chaos_degradation.json`: per workload, the
//! throughput relative to the GIL baseline at each injection rate. The
//! headline property — enforced numerically by `tests/chaos_suite.rs` —
//! is graceful degradation: as the rate approaches 100 %, throughput
//! converges toward the GIL baseline instead of collapsing, because the
//! watchdog stops paying per-attempt HTM overhead for doomed speculation.
//!
//! `HTMGIL_QUICK=1` shrinks the sweep for smoke runs.

use bench::{quick, results_dir, throughput_of, vm_config_for};
use htm_gil_core::{oracle, ExecConfig, Json, LengthPolicy, RuntimeMode, WatchdogConstants};
use htm_sim::FaultPlan;
use machine_sim::MachineProfile;
use workloads::Workload;

/// Fixed injection seed: the whole suite is deterministic.
const SEED: u64 = 0x0DA1_2A09;

fn chaos_workloads(q: bool) -> Vec<Workload> {
    let threads = 4;
    let iters = if q { 150 } else { 1_000 };
    vec![
        workloads::micro::while_bench(threads, iters),
        workloads::micro::iterator_bench(threads, iters),
        workloads::npb::cg(threads, if q { 1 } else { 2 }),
        workloads::webrick::webrick(threads, if q { 8 } else { 40 }),
    ]
}

fn rates(q: bool) -> Vec<f64> {
    if q {
        vec![0.0, 0.25, 1.0]
    } else {
        vec![0.0, 0.05, 0.10, 0.25, 0.50, 0.75, 1.0]
    }
}

fn subject_cfg(profile: &MachineProfile, rate: f64, interrupt_interval: u64) -> ExecConfig {
    let mut cfg = ExecConfig::new(RuntimeMode::Htm { length: LengthPolicy::Dynamic }, profile);
    if rate > 0.0 {
        cfg.fault_plan = Some(FaultPlan::spurious(SEED, rate));
    }
    cfg.interrupt_interval = interrupt_interval;
    cfg.watchdog = WatchdogConstants::enabled();
    cfg
}

/// Run one chaos point and oracle-check it; panics on divergence.
fn run_point(w: &Workload, profile: &MachineProfile, cfg: ExecConfig) -> (Json, f64) {
    let label = cfg.mode.label();
    let v = oracle::check_against_gil(&w.source, vm_config_for(w.threads), profile.clone(), cfg)
        .unwrap_or_else(|e| panic!("{}: {e}", w.name));
    if let Some(m) = &v.mismatch {
        panic!("{} diverged from the GIL oracle under injection ({label}):\n{m}", w.name);
    }
    let rel = throughput_of(w, &v.subject) / throughput_of(w, &v.oracle);
    let point = Json::obj()
        .field("throughput", throughput_of(w, &v.subject))
        .field("relative_to_gil", rel)
        .field("spurious_aborts", v.subject.htm.spurious)
        .field("total_aborts", v.subject.htm.total_aborts())
        .field("watchdog_escalations", v.subject.watchdog_escalations)
        .field("gil_acquisitions", v.subject.gil_acquisitions)
        .field("oracle_match", true);
    (point, rel)
}

fn main() {
    let q = quick();
    let profile = MachineProfile::generic(4);
    let mut workload_reports = Vec::new();
    for w in chaos_workloads(q) {
        println!("== chaos: {} ({} threads) ==", w.name, w.threads);
        println!("  {:>6}  {:>8}  {:>10}  {:>9}", "rate", "rel-GIL", "spurious", "watchdog");
        let mut points = Vec::new();
        for &rate in &rates(q) {
            let (point, rel) = run_point(&w, &profile, subject_cfg(&profile, rate, 0));
            println!(
                "  {:>5.0}%  {:>8.2}  {:>10}  {:>9}",
                rate * 100.0,
                rel,
                point.get("spurious_aborts").and_then(Json::as_u64).unwrap_or(0),
                point.get("watchdog_escalations").and_then(Json::as_u64).unwrap_or(0),
            );
            points.push(point.field("rate", rate));
        }
        workload_reports.push(
            Json::obj().field("name", w.name).field("threads", w.threads).field("points", points),
        );
    }
    // §5.6 interrupt-pressure sweep: shorter intervals kill more
    // in-flight transactions; output must stay oracle-identical.
    let mut interrupt_points = Vec::new();
    let w = workloads::micro::while_bench(4, if q { 150 } else { 1_000 });
    println!("== chaos: interrupt pressure ({}) ==", w.name);
    for interval in [200_000u64, 50_000, 10_000] {
        let (point, rel) = run_point(&w, &profile, subject_cfg(&profile, 0.0, interval));
        println!("  interval {interval:>7}: rel-GIL {rel:.2}");
        interrupt_points.push(point.field("interrupt_interval", interval));
    }
    let report = Json::obj()
        .field("suite", "chaos")
        .field("machine", profile.name)
        .field("seed", SEED)
        .field("quick", q)
        .field("mode", "HTM-dynamic")
        .field("workloads", workload_reports)
        .field("interrupt_pressure", interrupt_points);
    let path = results_dir().join("chaos_degradation.json");
    std::fs::write(&path, report.to_pretty()).expect("write chaos report");
    println!("\n  [json] {}", path.display());
}
