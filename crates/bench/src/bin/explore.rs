//! `explore` — schedule-space exploration driver.
//!
//! Searches the scheduler's decision tree for interleavings that break
//! GIL-equivalence (see `bench::explore` and DESIGN.md §14). Examples:
//!
//! ```text
//! explore --mode dfs --budget 400 --max-preempt 3 --jobs auto
//! explore --mode random --walks 128 --depth 24 --seed 7
//! explore --target torn-pair/bug/htm16 --bug-demo --stop-first --expect-violation
//! explore --replay 000201 --target mutex-counter/htm16
//! explore --list
//! ```
//!
//! Exit status is 0 when the outcome matches expectation: no violations
//! normally, at least one under `--expect-violation`. The stats document
//! (`--report-json`, schema `htm-gil-explore-report/v1`) carries no
//! `jobs` field — it is byte-identical at any pool size. Repro artifacts
//! for every violation are written next to the stats (or under
//! `bench-results/explore/`).

use bench::explore::{
    bug_demo_target, clean_targets, dfs, lazy_sub_clean_targets, lazy_sub_demo_target,
    random_walks, repro_json, stats_json, torn_pair_clean_target, ExploreOutcome, SearchParams,
    WalkParams,
};
use bench::runner;
use htm_gil_core::explore::{check_path, gil_expected, ExploreTarget};
use machine_sim::SchedPath;

fn usage() -> ! {
    eprintln!(
        "usage: explore [--mode dfs|random] [--budget N] [--max-preempt K] [--horizon H]\n\
         \x20              [--walks N] [--depth D] [--seed S] [--jobs N|auto]\n\
         \x20              [--target ID] [--bug-demo] [--lazy-demo] [--differential] [--stop-first]\n\
         \x20              [--expect-violation] [--replay HEX] [--report-json PATH]\n\
         \x20              [--repro-dir PATH] [--list]"
    );
    std::process::exit(2)
}

struct Cli {
    mode: String,
    params: SearchParams,
    walk: WalkParams,
    target: Option<String>,
    bug_demo: bool,
    lazy_demo: bool,
    expect_violation: bool,
    replay: Option<SchedPath>,
    report_json: Option<String>,
    repro_dir: Option<String>,
    list: bool,
}

fn parse_cli() -> Cli {
    let mut cli = Cli {
        mode: "dfs".into(),
        params: SearchParams::default(),
        walk: WalkParams::default(),
        target: None,
        bug_demo: false,
        lazy_demo: false,
        expect_violation: false,
        replay: None,
        report_json: None,
        repro_dir: None,
        list: false,
    };
    let mut args = std::env::args().skip(1);
    let need = |args: &mut dyn Iterator<Item = String>, flag: &str| -> String {
        args.next().unwrap_or_else(|| {
            eprintln!("error: {flag} requires a value");
            usage()
        })
    };
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--mode" => cli.mode = need(&mut args, "--mode"),
            "--budget" => cli.params.budget = parse_num(&need(&mut args, "--budget")),
            "--max-preempt" => {
                cli.params.max_preempt = parse_num(&need(&mut args, "--max-preempt")) as u32
            }
            "--horizon" => cli.params.horizon = parse_num(&need(&mut args, "--horizon")) as usize,
            "--shrink-budget" => {
                cli.params.shrink_budget = parse_num(&need(&mut args, "--shrink-budget"))
            }
            "--walks" => cli.walk.walks = parse_num(&need(&mut args, "--walks")),
            "--depth" => cli.walk.depth = parse_num(&need(&mut args, "--depth")) as usize,
            "--seed" => cli.walk.seed = parse_num(&need(&mut args, "--seed")),
            "--jobs" => runner::set_jobs(parse_jobs(&need(&mut args, "--jobs"))),
            "--target" => cli.target = Some(need(&mut args, "--target")),
            "--replay" => {
                let hex = need(&mut args, "--replay");
                match SchedPath::from_hex(&hex) {
                    Ok(p) => cli.replay = Some(p),
                    Err(e) => {
                        eprintln!("error: --replay {hex}: {e}");
                        std::process::exit(2);
                    }
                }
            }
            "--report-json" => cli.report_json = Some(need(&mut args, "--report-json")),
            "--repro-dir" => cli.repro_dir = Some(need(&mut args, "--repro-dir")),
            "--bug-demo" => cli.bug_demo = true,
            "--lazy-demo" => cli.lazy_demo = true,
            "--differential" => cli.params.differential = true,
            "--stop-first" => cli.params.stop_first = true,
            "--expect-violation" => cli.expect_violation = true,
            "--list" => cli.list = true,
            other => {
                if let Some(v) = other.strip_prefix("--jobs=") {
                    runner::set_jobs(parse_jobs(v));
                } else {
                    eprintln!("error: unknown flag {other}");
                    usage()
                }
            }
        }
    }
    cli
}

fn parse_num(v: &str) -> u64 {
    v.parse().unwrap_or_else(|_| {
        eprintln!("error: expected a number, got {v:?}");
        usage()
    })
}

fn parse_jobs(v: &str) -> usize {
    if v == "auto" {
        runner::auto_jobs()
    } else {
        parse_num(v) as usize
    }
}

fn corpus(cli: &Cli) -> Vec<ExploreTarget> {
    let quick = bench::quick();
    let mut targets = clean_targets(quick);
    targets.push(torn_pair_clean_target(quick));
    if cli.bug_demo {
        targets.push(bug_demo_target(quick));
    }
    if cli.lazy_demo {
        targets.extend(lazy_sub_clean_targets(quick));
        targets.push(lazy_sub_demo_target(quick));
    }
    if let Some(id) = &cli.target {
        targets.retain(|t| &t.id == id);
        if targets.is_empty() {
            eprintln!("error: no target matches {id:?} (try --list)");
            std::process::exit(2);
        }
    }
    targets
}

fn main() {
    let cli = parse_cli();
    if let Ok(v) = std::env::var("HTMGIL_JOBS") {
        if !v.is_empty() {
            runner::set_jobs(parse_jobs(&v));
        }
    }
    let targets = corpus(&cli);
    if cli.list {
        println!("targets ({} available):", targets.len());
        for t in &targets {
            println!(
                "  {:28} mode={:12} sub={:12} threads={} interrupts={} bug={}",
                t.id,
                t.mode.label(),
                t.subscription.label(),
                t.threads,
                t.interrupts,
                t.bug_dirty_read
            );
        }
        return;
    }
    if let Some(path) = &cli.replay {
        replay_one(&cli, &targets, path);
        return;
    }
    let jobs = runner::jobs();
    let mut all_stats = Vec::new();
    let mut total_violations = 0u64;
    let repro_dir = cli
        .repro_dir
        .clone()
        .unwrap_or_else(|| bench::results_dir().join("explore").display().to_string());
    for target in &targets {
        eprintln!("  [explore] {} ({})", target.id, cli.mode);
        let out: ExploreOutcome = match cli.mode.as_str() {
            "dfs" => dfs(target, &cli.params, jobs),
            "random" => random_walks(target, &cli.params, &cli.walk, jobs),
            other => {
                eprintln!("error: unknown --mode {other:?} (dfs|random)");
                usage()
            }
        };
        println!(
            "{:28} executions={:5} distinct={:5} max_depth={:5} max_preempt={} violations={}",
            target.id,
            out.stats.executions,
            out.stats.distinct_paths,
            out.stats.max_depth,
            out.stats.max_preemptions,
            out.stats.violations,
        );
        if !out.violations.is_empty() {
            let expected = gil_expected(target);
            let _ = std::fs::create_dir_all(&repro_dir);
            for (i, v) in out.violations.iter().enumerate() {
                let file = format!("{repro_dir}/{}-{i}.json", target.id.replace(['/', ' '], "_"));
                let doc = repro_json(target, &expected, v);
                if let Err(e) = std::fs::write(&file, doc.to_pretty()) {
                    eprintln!("warning: could not write {file}: {e}");
                } else {
                    println!(
                        "  [repro] {file}  path={} trail=\"{}\"",
                        v.minimized.to_hex(),
                        v.trail
                    );
                }
                println!("  [violation] {}", v.mismatch.lines().next().unwrap_or(""));
            }
        }
        total_violations += out.stats.violations;
        all_stats.push(out.stats);
        if cli.params.stop_first && total_violations > 0 {
            break;
        }
    }
    let doc = stats_json(&cli.mode, &cli.params, &all_stats);
    if let Some(path) = &cli.report_json {
        std::fs::write(path, doc.to_pretty()).expect("write exploration stats");
        println!("  [json] {path}");
    }
    let ok = (total_violations > 0) == cli.expect_violation;
    if !ok {
        if cli.expect_violation {
            eprintln!("FAIL: expected the search to find a violation, found none");
        } else {
            eprintln!("FAIL: {total_violations} schedule(s) diverged from the GIL oracle");
        }
        std::process::exit(1);
    }
    println!(
        "OK: {} target(s), {} executions, {} violation(s){}",
        all_stats.len(),
        all_stats.iter().map(|s| s.executions).sum::<u64>(),
        total_violations,
        if cli.expect_violation { " (expected)" } else { "" }
    );
}

fn replay_one(cli: &Cli, targets: &[ExploreTarget], path: &SchedPath) {
    let target = match (targets, &cli.target) {
        ([t], _) => t,
        (ts, None) => {
            eprintln!("error: --replay needs --target (candidates: {})", ts.len());
            std::process::exit(2);
        }
        _ => unreachable!("corpus() already filtered by --target"),
    };
    let expected = gil_expected(target);
    let (run, mismatch) = check_path(target, &expected, path);
    println!("replay {} on {}", path.to_hex(), target.id);
    println!(
        "  decisions={} preemptions={} stdout={:?}",
        run.decisions, run.preemptions, run.stdout
    );
    match mismatch {
        Some(m) => {
            println!("  VIOLATION: {m}");
            if !cli.expect_violation {
                std::process::exit(1);
            }
        }
        None => {
            println!("  matches the GIL oracle");
            if cli.expect_violation {
                eprintln!("FAIL: expected this path to violate");
                std::process::exit(1);
            }
        }
    }
}
