//! Measurements of the paper's §5.6 proposed optimizations and the §7
//! CPython what-if, implemented in `ruby_vm::extensions`:
//!
//! 1. **Thread-local lazy sweeping** — §5.6: sweep writes stop touching
//!    shared lines; expected to help allocation-heavy kernels under small
//!    heaps (where sweeping actually runs).
//! 2. **Thread-local inline caches** — §5.6: removes IC-fill conflicts
//!    and IC false sharing, at per-thread warm-up cost.
//! 3. **Reference-counting stores** — §7: CPython-style `INCREF/DECREF`
//!    traffic on every object store; predicted (and confirmed) to wreck
//!    HTM scalability because shared objects' count words join every
//!    transaction's write set.

use bench::{quick, run_workload_with, runner, vm_config_for};
use htm_gil_core::{ExecConfig, LengthPolicy, RuntimeMode};
use htm_gil_stats::Table;
use machine_sim::MachineProfile;
use ruby_vm::VmConfig;

/// Measured variants, in the old serial order (also the column order).
const VARIANTS: [&str; 6] = ["gil", "base", "tl_sweep", "small", "tl_ics", "refcount"];

fn variant_configs(
    variant: &str,
    profile: &MachineProfile,
    nthreads: usize,
) -> (ExecConfig, VmConfig) {
    let htm16 = RuntimeMode::Htm { length: LengthPolicy::Fixed(16) };
    let cfg = ExecConfig::new(htm16, profile);
    let mut vmc = vm_config_for(nthreads);
    match variant {
        "gil" => return (ExecConfig::new(RuntimeMode::Gil, profile), vmc),
        "base" => {}
        // Sweeping only matters when the heap is small enough to cycle:
        // compare base vs +tl-sweep under the paper's *small* heap.
        "tl_sweep" => {
            vmc = vmc.small_heap();
            vmc.tl_lazy_sweep = true;
        }
        "small" => vmc = vmc.small_heap(),
        "tl_ics" => vmc.thread_local_ics = true,
        "refcount" => vmc.refcount_writes = true,
        other => panic!("unknown variant {other}"),
    }
    (cfg, vmc)
}

fn main() {
    bench::runner::init_from_args();
    run();
    bench::reporting::finalize();
}

fn run() {
    let profile = MachineProfile::zec12();
    let scale = if quick() { 1 } else { 4 };
    let nthreads = if quick() { 4 } else { 12 };

    let mut table = Table::new(&[
        "bench",
        "GIL",
        "HTM-16",
        "+tl-sweep (small heap)",
        "base (small heap)",
        "+tl-ICs",
        "+refcount (CPython)",
    ]);
    let mut csv =
        String::from("bench,gil,htm16,tl_sweep_small_heap,base_small_heap,tl_ics,refcount\n");
    let kernels = workloads::npb_all(nthreads, scale);
    let points: Vec<(usize, &'static str)> =
        (0..kernels.len()).flat_map(|k| VARIANTS.iter().map(move |&v| (k, v))).collect();
    let cycles = runner::sweep(
        "Extensions",
        &points,
        |&(k, v)| format!("{} {v}", kernels[k].name),
        |&(k, v)| {
            let (cfg, vmc) = variant_configs(v, &profile, nthreads);
            run_workload_with(&kernels[k], &profile, cfg, vmc).elapsed_cycles
        },
    );
    for (w, chunk) in kernels.iter().zip(cycles.chunks(VARIANTS.len())) {
        let base_cycles = chunk[0] as f64;
        let s: Vec<f64> = chunk[1..].iter().map(|&c| base_cycles / c as f64).collect();
        let [base, tl_sweep, small, tl_ics, refcount] = s[..] else {
            unreachable!("one result per non-GIL variant");
        };
        table.row(&[
            w.name.to_string(),
            "1.00".into(),
            format!("{base:.2}"),
            format!("{tl_sweep:.2}"),
            format!("{small:.2}"),
            format!("{tl_ics:.2}"),
            format!("{refcount:.2}"),
        ]);
        csv.push_str(&format!(
            "{},1.0,{base:.3},{tl_sweep:.3},{small:.3},{tl_ics:.3},{refcount:.3}\n",
            w.name
        ));
    }
    println!("\n== §5.6/§7 extensions (speedup over GIL, {nthreads} threads, {}) ==", profile.name);
    println!("{}", table.render());
    println!("expected shapes: +tl-sweep ≥ base under the small heap;");
    println!("                 +tl-ICs ≈ base on the monomorphic NPB;");
    println!("                 +refcount ≪ base (the paper's CPython warning).");
    let path = bench::results_dir().join("extensions_zec12.csv");
    std::fs::write(&path, csv).expect("write csv");
    println!("  [csv] {}", path.display());
}
