//! The quantitative claims of the paper's running text (§5.4–§5.6),
//! reproduced as one table:
//!
//! * NPB speedups at 12 threads, zEC12: 1.9× (CG/IS/LU) to 4.4× (FT);
//! * single-thread overhead of HTM-dynamic vs GIL: 18–35 %;
//! * GIL-wait cycles exceed aborted-transaction cycles at 12 threads;
//! * >80 % of fallback-causing aborts are read-set conflicts; >50 % of
//!   > those at object allocation;
//! * ≈40 % of frequently-executed yield points end at length 1.

use bench::{quick, run_workload, runner, thread_counts};
use htm_gil_core::{LengthPolicy, RuntimeMode};
use htm_gil_stats::Table;
use machine_sim::MachineProfile;

/// Per-kernel runs, in the old serial order: the 1-thread GIL/HTM pair
/// (for the overhead claim), then the max-thread pair (for the rest).
const RUNS: [&str; 4] = ["gil1", "htm1", "giln", "htmn"];

fn main() {
    bench::runner::init_from_args();
    run();
    bench::reporting::finalize();
}

fn run() {
    let profile = MachineProfile::zec12();
    let scale = if quick() { 1 } else { 4 };
    let nmax = if quick() { 4 } else { *thread_counts(&profile).last().unwrap() };
    let dynamic = RuntimeMode::Htm { length: LengthPolicy::Dynamic };
    let mut table = Table::new(&[
        "bench",
        "speedup@12",
        "1T-overhead%",
        "gilwait>aborted",
        "read-confl%",
        "alloc-share%",
        "len1-share%",
    ]);
    let mut csv = String::from(
        "bench,speedup,overhead_1t_pct,gilwait_gt_aborted,read_conflict_pct,alloc_share_pct,len1_share_pct\n",
    );
    let kernels = ["BT", "CG", "FT", "IS", "LU", "MG", "SP"];
    let points: Vec<(&str, &str)> =
        kernels.iter().flat_map(|&k| RUNS.iter().map(move |&r| (k, r))).collect();
    let reports = runner::sweep(
        "In-text numbers",
        &points,
        |&(k, r)| format!("{k} {r}"),
        |&(k, r)| {
            let (threads, mode) = match r {
                "gil1" => (1, RuntimeMode::Gil),
                "htm1" => (1, dynamic),
                "giln" => (nmax, RuntimeMode::Gil),
                "htmn" => (nmax, dynamic),
                other => panic!("unknown run {other}"),
            };
            run_workload(&build(k, threads, scale), mode, &profile)
        },
    );
    for (name, chunk) in kernels.iter().zip(reports.chunks(RUNS.len())) {
        let [gil1, htm1, giln, htmn] = chunk else { unreachable!("one report per run") };
        let overhead = 100.0 * (htm1.elapsed_cycles as f64 / gil1.elapsed_cycles as f64 - 1.0);
        let speedup = giln.elapsed_cycles as f64 / htmn.elapsed_cycles as f64;
        let gil_gt = htmn.breakdown.gil_wait > htmn.breakdown.aborted;
        table.row(&[
            name.to_string(),
            format!("{speedup:.2}"),
            format!("{overhead:.0}"),
            format!("{gil_gt}"),
            format!("{:.0}", htmn.htm.read_conflict_share_pct()),
            format!("{:.0}", htmn.allocator_conflict_share_pct()),
            format!("{:.0}", 100.0 * htmn.share_length_one),
        ]);
        csv.push_str(&format!(
            "{name},{speedup:.3},{overhead:.2},{gil_gt},{:.2},{:.2},{:.2}\n",
            htmn.htm.read_conflict_share_pct(),
            htmn.allocator_conflict_share_pct(),
            100.0 * htmn.share_length_one
        ));
    }
    println!("\n== In-text numbers (zEC12, {nmax} threads, HTM-dynamic) ==");
    println!("{}", table.render());
    println!("paper: speedups 1.9–4.4; 1T overhead 18–35%; gil-wait > aborted;");
    println!("       read conflicts >80%; allocation >50% of them; ~40% length-1 sites.");
    let path = bench::results_dir().join("intext_numbers_zec12.csv");
    std::fs::write(&path, csv).expect("write csv");
    println!("  [csv] {}", path.display());
}

fn build(name: &str, threads: usize, scale: usize) -> workloads::Workload {
    match name {
        "BT" => workloads::npb::bt(threads, scale),
        "CG" => workloads::npb::cg(threads, scale),
        "FT" => workloads::npb::ft(threads, scale),
        "IS" => workloads::npb::is(threads, scale),
        "LU" => workloads::npb::lu(threads, scale),
        "MG" => workloads::npb::mg(threads, scale),
        "SP" => workloads::npb::sp(threads, scale),
        other => panic!("unknown kernel {other}"),
    }
}
