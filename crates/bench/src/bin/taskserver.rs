//! Task-server latency sweep binary.
//!
//! Thin wrapper over [`bench::taskserver::latency_sweep`] (shared with
//! `tests/pool_determinism.rs`). Emits
//! `bench-results/taskserver_latency.json`: for every client count ×
//! queue configuration × runtime mode point, the end-to-end and
//! queue-wait latency percentiles (p50/p90/p99/p999, simulated cycles)
//! plus the queue-depth/shed time series, measured over ≥1M simulated
//! requests per point in the full sweep.
//!
//! `HTMGIL_QUICK=1` shrinks the sweep for smoke runs; `--jobs <N|auto>`
//! fans the points out across a worker pool without changing a byte of
//! the report; `--report-json <path>` additionally captures every
//! underlying `RunReport`.

use bench::{quick, results_dir};

fn main() {
    bench::runner::init_from_args();
    let report = bench::taskserver::latency_sweep(quick());
    let path = results_dir().join("taskserver_latency.json");
    std::fs::write(&path, report.to_pretty()).expect("write taskserver report");
    println!("\n  [json] {}", path.display());
    bench::reporting::finalize();
}
