//! Ablations the paper calls out in §4.4/§5.4:
//!
//! 1. **Without the new yield points** — "all of the benchmarks except
//!    for CG in the Ruby NPB suffered from more than 20 % slowdowns
//!    compared with the GIL" (store overflows dominate).
//! 2. **Without the conflict removals** — "the HTM provided no
//!    acceleration in any of the benchmarks".
//! 3. Each conflict removal toggled individually, to show where the
//!    elision headroom comes from.
//! 4. Target-abort-ratio sweep (the paper: the best target depends on the
//!    HTM implementation's abort cost, not the application).
//!
//! Two design-space columns ride along (DESIGN.md §15):
//!
//! * **lazy-guarded-sub** — the commit-guard GIL-subscription policy;
//!   observably identical to the eager default, so its column must track
//!   `HTM-dyn` (the plain-`Lazy` policy is unsafe and has no column — the
//!   schedule explorer pins its divergence instead).
//! * **constrained-htm** — HTM-dynamic on the FORTH-style
//!   [`MachineProfile::constrained`] geometry (8 read / 4 write lines),
//!   measured against the GIL on the *same* machine and differentially
//!   checked against it; real capacity aborts must show up at every
//!   kernel.

use bench::{quick, run_workload_with, runner, thread_counts, vm_config_for};
use htm_gil_core::{
    oracle, ExecConfig, LengthPolicy, RuntimeMode, SubscriptionPolicy, YieldPolicy,
};
use htm_gil_stats::Table;
use machine_sim::MachineProfile;
use ruby_vm::VmConfig;
use workloads::Workload;

/// The ablation variants, in the (kernel-major) column order of the
/// table; each yields the executor/VM configuration to measure.
const VARIANTS: [&str; 10] =
    ["gil", "full", "no_yp", "no_rm", "no_tls", "no_fl", "no_ic", "no_pad", "lazy_g", "constr"];

fn variant_configs(
    variant: &str,
    profile: &MachineProfile,
    nthreads: usize,
) -> (ExecConfig, VmConfig) {
    let dynamic = RuntimeMode::Htm { length: LengthPolicy::Dynamic };
    let mut cfg = ExecConfig::new(dynamic, profile);
    let mut vmc = vm_config_for(nthreads);
    match variant {
        "gil" => cfg = ExecConfig::new(RuntimeMode::Gil, profile),
        "full" => {}
        // 1. Original (coarse) yield points only.
        "no_yp" => cfg.yield_policy = Some(YieldPolicy::Original),
        // 2. No conflict removals at all (original CRuby internals +
        //    shared running-thread global).
        "no_rm" => {
            cfg.tls_running_thread = false;
            vmc = vmc.original_cruby();
        }
        // 3. Individual removals off.
        "no_tls" => cfg.tls_running_thread = false,
        "no_fl" => vmc.thread_local_free_lists = false,
        "no_ic" => {
            vmc.method_ic_fill_once = false;
            vmc.ivar_ic_table_guard = false;
        }
        "no_pad" => vmc.padded_thread_structs = false,
        // 4. GIL-subscription policy axis.
        "lazy_g" => cfg.subscription = SubscriptionPolicy::LazyGuarded,
        other => panic!("unknown variant {other}"),
    }
    (cfg, vmc)
}

/// One measured cell: cycles, plus the point's *own* GIL baseline when
/// it runs on a different machine than the shared zEC12 column, plus the
/// capacity aborts the point observed.
struct Cell {
    cycles: u64,
    own_gil: Option<u64>,
    capacity_aborts: u64,
}

fn main() {
    bench::runner::init_from_args();
    run();
    bench::reporting::finalize();
}

fn run() {
    let profile = MachineProfile::zec12();
    let scale = if quick() { 1 } else { 3 };
    let nthreads = if quick() { 4 } else { *thread_counts(&profile).last().unwrap() };

    let kernels: Vec<Workload> = workloads::npb_all(nthreads, scale);
    let mut table = Table::new(&[
        "bench",
        "GIL",
        "HTM-dyn",
        "no-new-yield-pts",
        "no-conflict-removal",
        "no-tls-running",
        "no-tl-freelists",
        "no-ic-fixes",
        "no-padding",
        "lazy-guarded-sub",
        "constrained-htm",
    ]);
    let mut csv = String::from(
        "bench,gil,htm_dyn,no_yield_pts,no_removals,no_tls,no_freelists,no_ic,no_padding,lazy_guarded,constrained\n",
    );
    // kernel × variant points are independent runs; the GIL baseline each
    // speedup divides by is just another point, resolved after collection.
    let points: Vec<(usize, &'static str)> =
        (0..kernels.len()).flat_map(|k| VARIANTS.iter().map(move |&v| (k, v))).collect();
    let cells = runner::sweep(
        "Ablations",
        &points,
        |&(k, v)| format!("{} {v}", kernels[k].name),
        |&(k, v)| {
            if v == "constr" {
                // Constrained machine: the speedup baseline is the GIL on
                // the *same* geometry, and the run is differentially
                // checked against it — the tiny read/write sets may cost
                // throughput but never correctness.
                let p = MachineProfile::constrained();
                let cfg = ExecConfig::new(RuntimeMode::Htm { length: LengthPolicy::Dynamic }, &p);
                let w = &kernels[k];
                let v = oracle::check_against_gil(&w.source, vm_config_for(nthreads), p, cfg)
                    .unwrap_or_else(|e| panic!("{} constrained: {e}", w.name));
                if let Some(m) = &v.mismatch {
                    panic!(
                        "{} diverged from the GIL oracle on the constrained profile:\n{m}",
                        w.name
                    );
                }
                return Cell {
                    cycles: v.subject.elapsed_cycles,
                    own_gil: Some(v.oracle.elapsed_cycles),
                    capacity_aborts: v.subject.htm.overflow_read + v.subject.htm.overflow_write,
                };
            }
            let (cfg, vmc) = variant_configs(v, &profile, nthreads);
            let r = run_workload_with(&kernels[k], &profile, cfg, vmc);
            Cell {
                cycles: r.elapsed_cycles,
                own_gil: None,
                capacity_aborts: r.htm.overflow_read + r.htm.overflow_write,
            }
        },
    );
    let mut constrained_capacity = Vec::new();
    for (w, chunk) in kernels.iter().zip(cells.chunks(VARIANTS.len())) {
        let base_cycles = chunk[0].cycles as f64;
        let s: Vec<f64> = chunk[1..]
            .iter()
            .map(|c| c.own_gil.map_or(base_cycles, |g| g as f64) / c.cycles as f64)
            .collect();
        let [full, no_yp, no_rm, no_tls, no_fl, no_ic, no_pad, lazy_g, constr] = s[..] else {
            unreachable!("one result per non-GIL variant");
        };
        let constr_cell = chunk.last().expect("constr is the last variant");
        assert!(
            constr_cell.capacity_aborts > 0,
            "{}: the constrained geometry produced no capacity aborts",
            w.name
        );
        constrained_capacity.push((w.name, constr_cell.capacity_aborts));
        table.row(&[
            w.name.to_string(),
            "1.00".into(),
            format!("{full:.2}"),
            format!("{no_yp:.2}"),
            format!("{no_rm:.2}"),
            format!("{no_tls:.2}"),
            format!("{no_fl:.2}"),
            format!("{no_ic:.2}"),
            format!("{no_pad:.2}"),
            format!("{lazy_g:.2}"),
            format!("{constr:.2}"),
        ]);
        csv.push_str(&format!(
            "{},1.0,{full:.3},{no_yp:.3},{no_rm:.3},{no_tls:.3},{no_fl:.3},{no_ic:.3},{no_pad:.3},{lazy_g:.3},{constr:.3}\n",
            w.name
        ));
    }
    println!("\n== Ablations (speedup over GIL, {nthreads} threads, {}) ==", profile.name);
    println!("{}", table.render());
    println!("paper targets: no-new-yield-points <0.8 for all but CG;");
    println!("               no-conflict-removal ≈ ≤1.0 (no acceleration).");
    println!("design space:  lazy-guarded-sub tracks HTM-dyn (observably eager);");
    println!("               constrained-htm is vs the GIL on its own 8r/4w-line machine.");
    let caps: Vec<String> = constrained_capacity.iter().map(|(n, c)| format!("{n}={c}")).collect();
    println!("constrained capacity aborts (read+write overflows): {}", caps.join(" "));
    let path = bench::results_dir().join("ablations_zec12.csv");
    std::fs::write(&path, csv).expect("write csv");
    println!("  [csv] {}", path.display());
}
