//! Ablations the paper calls out in §4.4/§5.4:
//!
//! 1. **Without the new yield points** — "all of the benchmarks except
//!    for CG in the Ruby NPB suffered from more than 20 % slowdowns
//!    compared with the GIL" (store overflows dominate).
//! 2. **Without the conflict removals** — "the HTM provided no
//!    acceleration in any of the benchmarks".
//! 3. Each conflict removal toggled individually, to show where the
//!    elision headroom comes from.
//! 4. Target-abort-ratio sweep (the paper: the best target depends on the
//!    HTM implementation's abort cost, not the application).

use bench::{quick, run_workload_with, runner, thread_counts, vm_config_for};
use htm_gil_core::{ExecConfig, LengthPolicy, RuntimeMode, YieldPolicy};
use htm_gil_stats::Table;
use machine_sim::MachineProfile;
use ruby_vm::VmConfig;
use workloads::Workload;

/// The ablation variants, in the (kernel-major) column order of the
/// table; each yields the executor/VM configuration to measure.
const VARIANTS: [&str; 8] = ["gil", "full", "no_yp", "no_rm", "no_tls", "no_fl", "no_ic", "no_pad"];

fn variant_configs(
    variant: &str,
    profile: &MachineProfile,
    nthreads: usize,
) -> (ExecConfig, VmConfig) {
    let dynamic = RuntimeMode::Htm { length: LengthPolicy::Dynamic };
    let mut cfg = ExecConfig::new(dynamic, profile);
    let mut vmc = vm_config_for(nthreads);
    match variant {
        "gil" => cfg = ExecConfig::new(RuntimeMode::Gil, profile),
        "full" => {}
        // 1. Original (coarse) yield points only.
        "no_yp" => cfg.yield_policy = Some(YieldPolicy::Original),
        // 2. No conflict removals at all (original CRuby internals +
        //    shared running-thread global).
        "no_rm" => {
            cfg.tls_running_thread = false;
            vmc = vmc.original_cruby();
        }
        // 3. Individual removals off.
        "no_tls" => cfg.tls_running_thread = false,
        "no_fl" => vmc.thread_local_free_lists = false,
        "no_ic" => {
            vmc.method_ic_fill_once = false;
            vmc.ivar_ic_table_guard = false;
        }
        "no_pad" => vmc.padded_thread_structs = false,
        other => panic!("unknown variant {other}"),
    }
    (cfg, vmc)
}

fn main() {
    bench::runner::init_from_args();
    run();
    bench::reporting::finalize();
}

fn run() {
    let profile = MachineProfile::zec12();
    let scale = if quick() { 1 } else { 3 };
    let nthreads = if quick() { 4 } else { *thread_counts(&profile).last().unwrap() };

    let kernels: Vec<Workload> = workloads::npb_all(nthreads, scale);
    let mut table = Table::new(&[
        "bench",
        "GIL",
        "HTM-dyn",
        "no-new-yield-pts",
        "no-conflict-removal",
        "no-tls-running",
        "no-tl-freelists",
        "no-ic-fixes",
        "no-padding",
    ]);
    let mut csv = String::from(
        "bench,gil,htm_dyn,no_yield_pts,no_removals,no_tls,no_freelists,no_ic,no_padding\n",
    );
    // kernel × variant points are independent runs; the GIL baseline each
    // speedup divides by is just another point, resolved after collection.
    let points: Vec<(usize, &'static str)> =
        (0..kernels.len()).flat_map(|k| VARIANTS.iter().map(move |&v| (k, v))).collect();
    let cycles = runner::sweep(
        "Ablations",
        &points,
        |&(k, v)| format!("{} {v}", kernels[k].name),
        |&(k, v)| {
            let (cfg, vmc) = variant_configs(v, &profile, nthreads);
            run_workload_with(&kernels[k], &profile, cfg, vmc).elapsed_cycles
        },
    );
    for (w, chunk) in kernels.iter().zip(cycles.chunks(VARIANTS.len())) {
        let base_cycles = chunk[0] as f64;
        let s: Vec<f64> = chunk[1..].iter().map(|&c| base_cycles / c as f64).collect();
        let [full, no_yp, no_rm, no_tls, no_fl, no_ic, no_pad] = s[..] else {
            unreachable!("one result per non-GIL variant");
        };
        table.row(&[
            w.name.to_string(),
            "1.00".into(),
            format!("{full:.2}"),
            format!("{no_yp:.2}"),
            format!("{no_rm:.2}"),
            format!("{no_tls:.2}"),
            format!("{no_fl:.2}"),
            format!("{no_ic:.2}"),
            format!("{no_pad:.2}"),
        ]);
        csv.push_str(&format!(
            "{},1.0,{full:.3},{no_yp:.3},{no_rm:.3},{no_tls:.3},{no_fl:.3},{no_ic:.3},{no_pad:.3}\n",
            w.name
        ));
    }
    println!("\n== Ablations (speedup over GIL, {nthreads} threads, {}) ==", profile.name);
    println!("{}", table.render());
    println!("paper targets: no-new-yield-points <0.8 for all but CG;");
    println!("               no-conflict-removal ≈ ≤1.0 (no acceleration).");
    let path = bench::results_dir().join("ablations_zec12.csv");
    std::fs::write(&path, csv).expect("write csv");
    println!("  [csv] {}", path.display());
}
