//! Ablations the paper calls out in §4.4/§5.4:
//!
//! 1. **Without the new yield points** — "all of the benchmarks except
//!    for CG in the Ruby NPB suffered from more than 20 % slowdowns
//!    compared with the GIL" (store overflows dominate).
//! 2. **Without the conflict removals** — "the HTM provided no
//!    acceleration in any of the benchmarks".
//! 3. Each conflict removal toggled individually, to show where the
//!    elision headroom comes from.
//! 4. Target-abort-ratio sweep (the paper: the best target depends on the
//!    HTM implementation's abort cost, not the application).

use bench::{quick, run_workload_with, thread_counts, vm_config_for};
use htm_gil_core::{ExecConfig, LengthPolicy, RuntimeMode, YieldPolicy};
use htm_gil_stats::Table;
use machine_sim::MachineProfile;
use workloads::Workload;

fn main() {
    bench::reporting::init_from_args();
    run();
    bench::reporting::finalize();
}

fn run() {
    let profile = MachineProfile::zec12();
    let scale = if quick() { 1 } else { 3 };
    let nthreads = if quick() { 4 } else { *thread_counts(&profile).last().unwrap() };
    let dynamic = RuntimeMode::Htm { length: LengthPolicy::Dynamic };

    let kernels: Vec<Workload> = workloads::npb_all(nthreads, scale);
    let mut table = Table::new(&[
        "bench",
        "GIL",
        "HTM-dyn",
        "no-new-yield-pts",
        "no-conflict-removal",
        "no-tls-running",
        "no-tl-freelists",
        "no-ic-fixes",
        "no-padding",
    ]);
    let mut csv = String::from(
        "bench,gil,htm_dyn,no_yield_pts,no_removals,no_tls,no_freelists,no_ic,no_padding\n",
    );
    for w in &kernels {
        let gil_cfg = ExecConfig::new(RuntimeMode::Gil, &profile);
        let gil = run_workload_with(w, &profile, gil_cfg, vm_config_for(nthreads));
        let base_cycles = gil.elapsed_cycles as f64;
        let speedup = |r: htm_gil_core::RunReport| base_cycles / r.elapsed_cycles as f64;

        // Full HTM-dynamic.
        let full = speedup(run_workload_with(
            w,
            &profile,
            ExecConfig::new(dynamic, &profile),
            vm_config_for(nthreads),
        ));
        // 1. Original (coarse) yield points only.
        let mut cfg = ExecConfig::new(dynamic, &profile);
        cfg.yield_policy = Some(YieldPolicy::Original);
        let no_yp = speedup(run_workload_with(w, &profile, cfg, vm_config_for(nthreads)));
        // 2. No conflict removals at all (original CRuby internals +
        //    shared running-thread global).
        let mut cfg = ExecConfig::new(dynamic, &profile);
        cfg.tls_running_thread = false;
        let no_rm =
            speedup(run_workload_with(w, &profile, cfg, vm_config_for(nthreads).original_cruby()));
        // 3. Individual removals off.
        let mut cfg = ExecConfig::new(dynamic, &profile);
        cfg.tls_running_thread = false;
        let no_tls = speedup(run_workload_with(w, &profile, cfg, vm_config_for(nthreads)));
        let mut vmc = vm_config_for(nthreads);
        vmc.thread_local_free_lists = false;
        let no_fl =
            speedup(run_workload_with(w, &profile, ExecConfig::new(dynamic, &profile), vmc));
        let mut vmc = vm_config_for(nthreads);
        vmc.method_ic_fill_once = false;
        vmc.ivar_ic_table_guard = false;
        let no_ic =
            speedup(run_workload_with(w, &profile, ExecConfig::new(dynamic, &profile), vmc));
        let mut vmc = vm_config_for(nthreads);
        vmc.padded_thread_structs = false;
        let no_pad =
            speedup(run_workload_with(w, &profile, ExecConfig::new(dynamic, &profile), vmc));

        table.row(&[
            w.name.to_string(),
            "1.00".into(),
            format!("{full:.2}"),
            format!("{no_yp:.2}"),
            format!("{no_rm:.2}"),
            format!("{no_tls:.2}"),
            format!("{no_fl:.2}"),
            format!("{no_ic:.2}"),
            format!("{no_pad:.2}"),
        ]);
        csv.push_str(&format!(
            "{},1.0,{full:.3},{no_yp:.3},{no_rm:.3},{no_tls:.3},{no_fl:.3},{no_ic:.3},{no_pad:.3}\n",
            w.name
        ));
    }
    println!("\n== Ablations (speedup over GIL, {nthreads} threads, {}) ==", profile.name);
    println!("{}", table.render());
    println!("paper targets: no-new-yield-points <0.8 for all but CG;");
    println!("               no-conflict-removal ≈ ≤1.0 (no acceleration).");
    let path = bench::results_dir().join("ablations_zec12.csv");
    std::fs::write(&path, csv).expect("write csv");
    println!("  [csv] {}", path.display());
}
