//! Figure 7: WEBrick on zEC12 and Xeon, Ruby on Rails on Xeon —
//! throughput vs concurrent clients (normalized to 1-client GIL), plus
//! HTM-dynamic abort ratios.
//!
//! Shape targets: the GIL itself gains from I/O overlap (17 %/26 %);
//! HTM-1 and HTM-dynamic win overall (paper: +14 %/+57 % over GIL for
//! WEBrick, +24 % for Rails); HTM-dynamic abort ratios stay elevated
//! because most lengths bottom out at 1.

use bench::{paper_modes, print_panel, quick, run_workload, runner, throughput_of, write_csv};
use htm_gil_stats::{Series, SeriesSet};
use machine_sim::MachineProfile;
use workloads::Workload;

fn main() {
    bench::runner::init_from_args();
    run();
    bench::reporting::finalize();
}

fn run() {
    let requests = if quick() { 48 } else { 600 };
    let clients: Vec<usize> = if quick() { vec![1, 2, 4] } else { vec![1, 2, 3, 4, 5, 6] };
    type Builder = fn(usize, usize) -> Workload;
    let cases: Vec<(&str, MachineProfile, Builder)> = vec![
        ("WEBrick", MachineProfile::zec12(), workloads::webrick::webrick),
        ("WEBrick", MachineProfile::xeon_e3_1275_v3(), workloads::webrick::webrick),
        ("Rails", MachineProfile::xeon_e3_1275_v3(), workloads::rails::rails),
    ];
    let mut abort_panel =
        SeriesSet::new("Fig.7 abort ratios of HTM-dynamic", "clients", "abort ratio %");
    for (name, profile, build) in cases {
        let title = format!("Fig.7 {name} / {}", profile.name);
        // mode × clients are independent server simulations: fan them out
        // through the runner and assemble the series in submission order.
        let points: Vec<(htm_gil_core::RuntimeMode, usize)> =
            paper_modes().into_iter().flat_map(|m| clients.iter().map(move |&c| (m, c))).collect();
        let results = runner::sweep(
            &title,
            &points,
            |&(mode, c)| format!("{} c={c}", mode.label()),
            |&(mode, c)| {
                let w = build(c, requests);
                let r = run_workload(&w, mode, &profile);
                (throughput_of(&w, &r), r.abort_ratio_pct())
            },
        );
        let mut set = SeriesSet::new(title, "clients", "throughput (1 = 1-client GIL)");
        let mut aborts = Series::new(format!("{name} / {}", profile.name));
        for (mode, chunk) in paper_modes().into_iter().zip(results.chunks(clients.len())) {
            let mut s = Series::new(mode.label());
            for (&c, &(tput, abort_pct)) in clients.iter().zip(chunk) {
                s.push(c as f64, tput);
                if mode.label() == "HTM-dynamic" {
                    aborts.push(c as f64, abort_pct);
                }
            }
            set.add(s);
        }
        let set = set.normalize_to("GIL", clients[0] as f64);
        print_panel(&set);
        write_csv(
            &format!("fig7_{}_{}", name.to_lowercase(), profile.name.replace(' ', "_")),
            &set,
        );
        // Paper headline numbers.
        let cmax = *clients.last().unwrap() as f64;
        let best_clients = clients.iter().map(|&c| c as f64).collect::<Vec<_>>();
        let peak = |label: &str| -> f64 {
            best_clients
                .iter()
                .filter_map(|&c| set.get(label).and_then(|s| s.y_at(c)))
                .fold(f64::MIN, f64::max)
        };
        let best_htm = ["HTM-1", "HTM-16", "HTM-256", "HTM-dynamic"]
            .iter()
            .map(|l| (l, peak(l)))
            .max_by(|a, b| a.1.total_cmp(&b.1))
            .unwrap();
        println!(
            "  {name}/{}: peak GIL {:.2}x | best HTM = {} {:.2}x ({:+.0}% vs GIL) | \
             HTM-dynamic {:.2}x ({:.2} of GIL) at up to {cmax} clients",
            profile.name,
            peak("GIL"),
            best_htm.0,
            best_htm.1,
            100.0 * (best_htm.1 / peak("GIL") - 1.0),
            peak("HTM-dynamic"),
            peak("HTM-dynamic") / peak("GIL"),
        );
        abort_panel.add(aborts);
    }
    print_panel(&abort_panel);
    write_csv("fig7_abort_ratios", &abort_panel);
}
