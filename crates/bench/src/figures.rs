//! Figure-data generation, shared between the `fig4_micro`/`fig8_aborts`
//! binaries and the determinism test.
//!
//! Everything here is a pure function of the explicit `quick` flag (the
//! binaries pass [`crate::quick`], the determinism test passes `false`):
//! given the same flag and the same code, the returned panels — and
//! therefore the CSV bytes derived from them — must be identical on every
//! run. `tests/figure_determinism.rs` exploits that to require the
//! committed `bench-results/fig4_*.csv` and `fig8_*.csv` files to be
//! byte-identical to a fresh regeneration, which is the repo's oracle that
//! a refactor of the simulator core (such as the ownership-directory
//! rewrite of `TxMemory`) changed no observable behaviour.

use htm_gil_core::{LengthPolicy, RuntimeMode};
use htm_gil_stats::{Series, SeriesSet, Table};
use machine_sim::MachineProfile;
use workloads::Workload;

use crate::{run_workload, runner, sweep_panel, thread_counts};

/// One Fig. 4 sweep: a micro-benchmark × machine panel.
pub struct Fig4Panel {
    /// Basename of the CSV under `bench-results/` (no extension).
    pub csv_name: String,
    /// Micro-benchmark name ("While" / "Iterator").
    pub bench: &'static str,
    /// Largest thread count in the sweep (the paper's headline point).
    pub max_threads: f64,
    pub set: SeriesSet,
}

/// Fig. 4 data: While and Iterator on both machines, all paper modes.
pub fn fig4_panels(quick: bool) -> Vec<Fig4Panel> {
    let iters = if quick { 150 } else { 2_000 };
    let mut panels = Vec::new();
    for profile in [MachineProfile::zec12(), MachineProfile::xeon_e3_1275_v3()] {
        let threads = thread_counts(&profile);
        for (name, builder) in [
            ("While", workloads::micro::while_bench as fn(usize, usize) -> Workload),
            ("Iterator", workloads::micro::iterator_bench as fn(usize, usize) -> Workload),
        ] {
            let title = format!("Fig.4 {name} / {}", profile.name);
            let set = sweep_panel(&title, &profile, &threads, |n| builder(n, iters));
            panels.push(Fig4Panel {
                csv_name: format!(
                    "fig4_{}_{}",
                    name.to_lowercase(),
                    profile.name.replace(' ', "_")
                ),
                bench: name,
                max_threads: *threads.last().unwrap() as f64,
                set,
            });
        }
    }
    panels
}

/// One Fig. 8 abort-ratio sweep (per machine).
pub struct Fig8AbortPanel {
    pub csv_name: String,
    pub set: SeriesSet,
}

/// Fig. 8 abort ratios of HTM-dynamic across the NPB, per machine.
pub fn fig8_abort_panels(quick: bool) -> Vec<Fig8AbortPanel> {
    let scale = if quick { 1 } else { 4 };
    let dynamic = RuntimeMode::Htm { length: LengthPolicy::Dynamic };
    let mut panels = Vec::new();
    for profile in [MachineProfile::zec12(), MachineProfile::xeon_e3_1275_v3()] {
        // Single-threaded runs use the GIL fast path: enumerate only the
        // multi-threaded points (the old serial loop skipped n < 2 too).
        let threads: Vec<usize> = if quick { vec![2, 4] } else { thread_counts(&profile) }
            .into_iter()
            .filter(|&n| n >= 2)
            .collect();
        let kernels: Vec<&'static str> =
            workloads::npb_all(2, scale).iter().map(|w| w.name).collect();
        let points: Vec<(&'static str, usize)> =
            kernels.iter().flat_map(|&name| threads.iter().map(move |&n| (name, n))).collect();
        let title = format!("Fig.8 abort ratios / {}", profile.name);
        let results = runner::sweep(
            &title,
            &points,
            |&(name, n)| format!("{name} t={n}"),
            |&(name, n)| {
                let w = rebuild(name, n, scale);
                run_workload(&w, dynamic, &profile).abort_ratio_pct()
            },
        );
        let mut set = SeriesSet::new(title, "threads", "abort ratio %");
        for (name, chunk) in kernels.iter().zip(results.chunks(threads.len())) {
            let mut s = Series::new(*name);
            for (&n, &pct) in threads.iter().zip(chunk) {
                s.push(n as f64, pct);
            }
            set.add(s);
        }
        panels.push(Fig8AbortPanel {
            csv_name: format!("fig8_abort_ratios_{}", profile.name.replace(' ', "_")),
            set,
        });
    }
    panels
}

/// Fig. 8 cycle breakdowns + §5.6 abort investigation on zEC12.
pub struct Fig8Breakdown {
    pub threads: usize,
    pub machine: &'static str,
    pub csv_name: String,
    pub table: Table,
    pub csv: String,
}

pub fn fig8_breakdown(quick: bool) -> Fig8Breakdown {
    let scale = if quick { 1 } else { 4 };
    let dynamic = RuntimeMode::Htm { length: LengthPolicy::Dynamic };
    let profile = MachineProfile::zec12();
    let nthreads = if quick { 4 } else { 12 };
    let mut table = Table::new(&[
        "bench",
        "tx-begin/end%",
        "success-tx%",
        "gil-held%",
        "aborted%",
        "gil-wait%",
        "io-wait%",
        "other%",
        "abort%",
        "read-confl%",
        "alloc-confl%",
    ]);
    let mut csv = String::from(
        "bench,tx_begin_end,success,gil_held,aborted,gil_wait,io_wait,other,abort_ratio,read_conflict_share,alloc_share\n",
    );
    let kernels = workloads::npb_all(nthreads, scale);
    let reports = runner::sweep(
        "Fig.8 breakdown",
        &kernels,
        |w| w.name.to_string(),
        |w| run_workload(w, dynamic, &profile),
    );
    for (w0, r) in kernels.iter().zip(&reports) {
        let sh = r.breakdown.shares_pct();
        table.row(&[
            w0.name.to_string(),
            format!("{:.1}", sh[0].1),
            format!("{:.1}", sh[1].1),
            format!("{:.1}", sh[2].1),
            format!("{:.1}", sh[3].1),
            format!("{:.1}", sh[4].1),
            format!("{:.1}", sh[5].1),
            format!("{:.1}", sh[6].1),
            format!("{:.1}", r.abort_ratio_pct()),
            format!("{:.0}", r.htm.read_conflict_share_pct()),
            format!("{:.0}", r.allocator_conflict_share_pct()),
        ]);
        csv.push_str(&format!(
            "{},{:.2},{:.2},{:.2},{:.2},{:.2},{:.2},{:.2},{:.2},{:.2},{:.2}\n",
            w0.name,
            sh[0].1,
            sh[1].1,
            sh[2].1,
            sh[3].1,
            sh[4].1,
            sh[5].1,
            sh[6].1,
            r.abort_ratio_pct(),
            r.htm.read_conflict_share_pct(),
            r.allocator_conflict_share_pct()
        ));
    }
    Fig8Breakdown {
        threads: nthreads,
        machine: profile.name,
        csv_name: "fig8_breakdown_zec12".to_string(),
        table,
        csv,
    }
}

fn rebuild(name: &str, threads: usize, scale: usize) -> Workload {
    match name {
        "BT" => workloads::npb::bt(threads, scale),
        "CG" => workloads::npb::cg(threads, scale),
        "FT" => workloads::npb::ft(threads, scale),
        "IS" => workloads::npb::is(threads, scale),
        "LU" => workloads::npb::lu(threads, scale),
        "MG" => workloads::npb::mg(threads, scale),
        "SP" => workloads::npb::sp(threads, scale),
        other => panic!("unknown kernel {other}"),
    }
}
