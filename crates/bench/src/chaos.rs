//! Chaos suite: fault-injection degradation sweep (library part).
//!
//! Sweeps the spurious-abort injection rate from 0 % to 100 % over the
//! While/Iterator micro-benchmarks, the NPB CG kernel and the WEBrick
//! server model, running each point under HTM-dynamic with the livelock
//! watchdog armed. Every run is differentially checked against the plain
//! GIL oracle (identical stdout + identical final global-heap digest) —
//! any divergence is a bug and aborts the sweep. A second, smaller sweep
//! arms the §5.6 timer-interrupt model at decreasing intervals.
//!
//! All points are independent `(workload, rate | interrupt-interval)`
//! configurations, so the whole sweep fans out through
//! [`crate::runner::sweep`]; per-point console lines and the emitted
//! JSON document are assembled from the ordered results, making
//! `chaos_degradation.json` byte-identical at any `--jobs` value —
//! `tests/pool_determinism.rs` asserts exactly that on a quick slice.
//!
//! The `chaos` binary wraps [`degradation_report`] and writes
//! `bench-results/chaos_degradation.json`.

use htm_gil_core::{
    oracle, ExecConfig, Json, LengthPolicy, RuntimeMode, SubscriptionPolicy, WatchdogConstants,
};
use htm_sim::FaultPlan;
use machine_sim::MachineProfile;
use workloads::Workload;

use crate::{runner, throughput_of, vm_config_for};

/// Fixed injection seed: the whole suite is deterministic.
pub const SEED: u64 = 0x0DA1_2A09;

fn chaos_workloads(q: bool) -> Vec<Workload> {
    let threads = 4;
    let iters = if q { 150 } else { 1_000 };
    vec![
        workloads::micro::while_bench(threads, iters),
        workloads::micro::iterator_bench(threads, iters),
        workloads::npb::cg(threads, if q { 1 } else { 2 }),
        workloads::webrick::webrick(threads, if q { 8 } else { 40 }),
        chaos_taskserver(q),
    ]
}

/// The taskserver chaos subject: backpressure (no shedding), so stdout
/// and the final heap digest are mode-independent and the GIL
/// differential check applies. Shed points are excluded on purpose —
/// *which* tasks are shed is timing-dependent, so a shed run has no GIL
/// oracle.
fn chaos_taskserver(q: bool) -> Workload {
    workloads::taskserver::taskserver(3, 2, 4, if q { 24 } else { 240 }, false)
}

fn rates(q: bool) -> Vec<f64> {
    if q {
        vec![0.0, 0.25, 1.0]
    } else {
        vec![0.0, 0.05, 0.10, 0.25, 0.50, 0.75, 1.0]
    }
}

/// Interrupt intervals of the §5.6 pressure sweep (simulated cycles).
const INTERRUPT_INTERVALS: [u64; 3] = [200_000, 50_000, 10_000];

fn subject_cfg(profile: &MachineProfile, rate: f64, interrupt_interval: u64) -> ExecConfig {
    let mut cfg = ExecConfig::new(RuntimeMode::Htm { length: LengthPolicy::Dynamic }, profile);
    if rate > 0.0 {
        cfg.fault_plan = Some(FaultPlan::spurious(SEED, rate));
    }
    cfg.interrupt_interval = interrupt_interval;
    cfg.watchdog = WatchdogConstants::enabled();
    cfg
}

/// Run one chaos point and oracle-check it; panics on divergence.
fn run_point(w: &Workload, profile: &MachineProfile, cfg: ExecConfig) -> (Json, f64) {
    let label = cfg.mode.label();
    let v = oracle::check_against_gil(&w.source, vm_config_for(w.threads), profile.clone(), cfg)
        .unwrap_or_else(|e| panic!("{}: {e}", w.name));
    if let Some(m) = &v.mismatch {
        panic!("{} diverged from the GIL oracle under injection ({label}):\n{m}", w.name);
    }
    let rel = throughput_of(w, &v.subject) / throughput_of(w, &v.oracle);
    let point = Json::obj()
        .field("throughput", throughput_of(w, &v.subject))
        .field("relative_to_gil", rel)
        .field("spurious_aborts", v.subject.htm.spurious)
        .field("total_aborts", v.subject.htm.total_aborts())
        .field("watchdog_escalations", v.subject.watchdog_escalations)
        .field("gil_acquisitions", v.subject.gil_acquisitions)
        .field("capacity_aborts", v.subject.htm.overflow_read + v.subject.htm.overflow_write)
        .field("oracle_match", true);
    (point, rel)
}

/// Injection rates of the two design-space axes (subscription policy and
/// the constrained machine) — a smaller slice than the main sweep.
fn axis_rates(q: bool) -> Vec<f64> {
    if q {
        vec![0.0, 0.25]
    } else {
        vec![0.0, 0.25, 1.0]
    }
}

/// The safe subscription policies of the chaos axis, in column order.
const POLICIES: [SubscriptionPolicy; 2] =
    [SubscriptionPolicy::Eager, SubscriptionPolicy::LazyGuarded];

/// One enumerated sweep point: an injection-rate point of a workload, an
/// interrupt-pressure point (always on the While micro-benchmark), or
/// the combined taskserver point (injection *and* timer interrupts at
/// once — the worst-case chaos the latency pipeline must survive).
enum Point {
    Inject {
        workload: usize,
        rate: f64,
    },
    Interrupt {
        interval: u64,
    },
    TaskserverCombined,
    /// GIL-subscription policy axis (DESIGN.md §15) under injection,
    /// always on the While micro-benchmark. Only the two *safe* policies
    /// appear: plain `Lazy` diverges from the GIL oracle by design (the
    /// schedule explorer pins its counterexample), so a chaos point for
    /// it would be a tautological failure.
    Subscription {
        policy: SubscriptionPolicy,
        rate: f64,
    },
    /// Constrained-HTM machine axis: the FORTH-style 8-read/4-write-line
    /// geometry, where real capacity aborts stack on top of injection.
    Constrained {
        rate: f64,
    },
}

/// Fixed configuration of the combined taskserver point.
pub const TASKSERVER_COMBINED_RATE: f64 = 0.25;
/// Interrupt interval of the combined taskserver point (simulated cycles).
pub const TASKSERVER_COMBINED_INTERVAL: u64 = 50_000;

/// Run the full chaos sweep (injection rates × workloads, then the
/// interrupt-pressure sweep), print the per-workload tables, and return
/// the `chaos_degradation.json` document.
pub fn degradation_report(q: bool) -> Json {
    let profile = MachineProfile::generic(4);
    let workloads = chaos_workloads(q);
    let rates = rates(q);
    let interrupt_workload = workloads::micro::while_bench(4, if q { 150 } else { 1_000 });

    let mut points: Vec<Point> = Vec::new();
    for wi in 0..workloads.len() {
        for &rate in &rates {
            points.push(Point::Inject { workload: wi, rate });
        }
    }
    for interval in INTERRUPT_INTERVALS {
        points.push(Point::Interrupt { interval });
    }
    points.push(Point::TaskserverCombined);
    let axis_rates = axis_rates(q);
    for policy in POLICIES {
        for &rate in &axis_rates {
            points.push(Point::Subscription { policy, rate });
        }
    }
    for &rate in &axis_rates {
        points.push(Point::Constrained { rate });
    }

    let constrained_profile = MachineProfile::constrained();
    let taskserver_workload = chaos_taskserver(q);
    let results = runner::sweep(
        "chaos",
        &points,
        |p| match p {
            Point::Inject { workload, rate } => {
                format!("{} rate={:.0}%", workloads[*workload].name, rate * 100.0)
            }
            Point::Interrupt { interval } => format!("interrupt interval={interval}"),
            Point::TaskserverCombined => "TaskServer inject+interrupt".to_string(),
            Point::Subscription { policy, rate } => {
                format!("sub={} rate={:.0}%", policy.label(), rate * 100.0)
            }
            Point::Constrained { rate } => format!("constrained rate={:.0}%", rate * 100.0),
        },
        |p| match p {
            Point::Inject { workload, rate } => {
                let w = &workloads[*workload];
                run_point(w, &profile, subject_cfg(&profile, *rate, 0))
            }
            Point::Interrupt { interval } => {
                run_point(&interrupt_workload, &profile, subject_cfg(&profile, 0.0, *interval))
            }
            Point::TaskserverCombined => run_point(
                &taskserver_workload,
                &profile,
                subject_cfg(&profile, TASKSERVER_COMBINED_RATE, TASKSERVER_COMBINED_INTERVAL),
            ),
            Point::Subscription { policy, rate } => {
                let mut cfg = subject_cfg(&profile, *rate, 0);
                cfg.subscription = *policy;
                run_point(&interrupt_workload, &profile, cfg)
            }
            Point::Constrained { rate } => {
                let cfg = subject_cfg(&constrained_profile, *rate, 0);
                run_point(&interrupt_workload, &constrained_profile, cfg)
            }
        },
    );

    // Assemble tables and the JSON document from the ordered results.
    let mut results = results.into_iter();
    let mut workload_reports = Vec::new();
    for w in &workloads {
        println!("== chaos: {} ({} threads) ==", w.name, w.threads);
        println!("  {:>6}  {:>8}  {:>10}  {:>9}", "rate", "rel-GIL", "spurious", "watchdog");
        let mut rate_points = Vec::new();
        for &rate in &rates {
            let (point, rel) = results.next().expect("one result per point");
            println!(
                "  {:>5.0}%  {:>8.2}  {:>10}  {:>9}",
                rate * 100.0,
                rel,
                point.get("spurious_aborts").and_then(Json::as_u64).unwrap_or(0),
                point.get("watchdog_escalations").and_then(Json::as_u64).unwrap_or(0),
            );
            rate_points.push(point.field("rate", rate));
        }
        workload_reports.push(
            Json::obj()
                .field("name", w.name)
                .field("threads", w.threads)
                .field("points", rate_points),
        );
    }
    // §5.6 interrupt-pressure sweep: shorter intervals kill more
    // in-flight transactions; output must stay oracle-identical.
    let mut interrupt_points = Vec::new();
    println!("== chaos: interrupt pressure ({}) ==", interrupt_workload.name);
    for interval in INTERRUPT_INTERVALS {
        let (point, rel) = results.next().expect("one result per interrupt point");
        println!("  interval {interval:>7}: rel-GIL {rel:.2}");
        interrupt_points.push(point.field("interrupt_interval", interval));
    }
    // Combined taskserver point: fault injection and timer interrupts at
    // once, differentially checked like everything else — the lifecycle
    // marks' escrow must keep the latency pipeline consistent while
    // transactions are being killed from two directions.
    let (combined, rel) = results.next().expect("the combined taskserver point");
    println!("== chaos: {} inject+interrupt: rel-GIL {rel:.2} ==", taskserver_workload.name);
    let combined = combined
        .field("rate", TASKSERVER_COMBINED_RATE)
        .field("interrupt_interval", TASKSERVER_COMBINED_INTERVAL);
    // Subscription-policy axis: the two safe policies must degrade the
    // same way (LazyGuarded is observably eager — DESIGN.md §15).
    let mut subscription_points = Vec::new();
    println!("== chaos: subscription axis ({}) ==", interrupt_workload.name);
    for policy in POLICIES {
        for &rate in &axis_rates {
            let (point, rel) = results.next().expect("one result per subscription point");
            println!("  sub={:<12} rate {:>3.0}%: rel-GIL {rel:.2}", policy.label(), rate * 100.0);
            subscription_points.push(point.field("policy", policy.label()).field("rate", rate));
        }
    }
    // Constrained-machine axis: real capacity aborts stacked on
    // injection; the oracle check inside `run_point` already guarantees
    // every point matched the GIL on the same tiny geometry.
    let mut constrained_points = Vec::new();
    println!("== chaos: constrained profile ({}) ==", interrupt_workload.name);
    for &rate in &axis_rates {
        let (point, rel) = results.next().expect("one result per constrained point");
        let caps = point.get("capacity_aborts").and_then(Json::as_u64).unwrap_or(0);
        println!("  rate {:>3.0}%: rel-GIL {rel:.2} capacity-aborts {caps}", rate * 100.0);
        constrained_points.push(point.field("rate", rate));
    }
    Json::obj()
        .field("suite", "chaos")
        .field("machine", profile.name)
        .field("seed", SEED)
        .field("quick", q)
        .field("mode", "HTM-dynamic")
        .field("workloads", workload_reports)
        .field("interrupt_pressure", interrupt_points)
        .field("taskserver_combined", combined)
        .field("subscription_axis", subscription_points)
        .field(
            "constrained_profile",
            Json::obj()
                .field("machine", constrained_profile.name)
                .field("points", constrained_points),
        )
}
