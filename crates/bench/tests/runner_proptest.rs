//! Property tests for the sweep runner's ordering contract.
//!
//! For random point lists, pool sizes and per-point durations,
//! [`bench::runner::try_sweep_with_jobs`] must return exactly one result
//! per point, in submission order — no loss, no duplication, no
//! dependence on completion order. When points panic, the sweep must
//! fail with the identity (index, label, payload) of the **lowest**
//! panicking index, at any pool size: the pool hands indices out in
//! order, so every point below a failure was started and ran to its own
//! verdict.

use bench::pool::{try_map_ordered_pruned, PointOutcome};
use bench::runner::try_sweep_with_jobs;
use proptest::collection::vec;
use proptest::prelude::*;

proptest! {
    /// Results come back 1:1 and in submission order whatever the pool
    /// size and whatever each point's duration.
    #[test]
    fn ordered_complete_and_duplicate_free(
        delays_us in vec(0u64..200, 0..40),
        jobs in 1usize..9,
    ) {
        let points: Vec<(usize, u64)> =
            delays_us.iter().copied().enumerate().collect();
        let out = try_sweep_with_jobs(
            jobs,
            "prop",
            &points,
            |&(i, _)| i.to_string(),
            |&(i, d)| {
                std::thread::sleep(std::time::Duration::from_micros(d));
                i
            },
        )
        .expect("no point panics");
        let want: Vec<usize> = (0..points.len()).collect();
        prop_assert_eq!(out, want, "jobs={}", jobs);
    }

    /// A panicking point fails the sweep with the lowest panicking
    /// index's identity; panic-free sweeps succeed.
    #[test]
    fn worker_panic_surfaces_lowest_point_identity(
        fates in vec((0u8..10, 0u64..120), 1..40),
        jobs in 1usize..9,
    ) {
        // fate < 2 → the point panics (~20 % of points per case).
        let points: Vec<(usize, bool, u64)> = fates
            .iter()
            .enumerate()
            .map(|(i, &(fate, delay))| (i, fate < 2, delay))
            .collect();
        let result = try_sweep_with_jobs(
            jobs,
            "prop",
            &points,
            |&(i, _, _)| format!("point-{i}"),
            |&(i, panics, d)| {
                std::thread::sleep(std::time::Duration::from_micros(d));
                if panics {
                    panic!("injected failure at {i}");
                }
                i
            },
        );
        match points.iter().find(|&&(_, panics, _)| panics) {
            None => {
                let out = result.expect("no panicking point");
                prop_assert_eq!(out.len(), points.len());
            }
            Some(&(first, _, _)) => {
                let err = result.expect_err("a point panicked");
                prop_assert_eq!(err.index, first, "jobs={}", jobs);
                prop_assert_eq!(err.label, format!("point-{first}"));
                prop_assert!(
                    err.payload.contains(&format!("injected failure at {first}")),
                    "payload {:?} lost the panic message",
                    err.payload
                );
            }
        }
    }

    /// The pruned map truncates at the lowest-index pruning point and is
    /// pool-size invariant: whatever a bigger pool over-computes past
    /// the first prune is dropped, so the output always equals the
    /// 1-job reference — results for every index up to and including
    /// the first `Prune`, `None` after it.
    #[test]
    fn pruned_map_matches_the_serial_reference_at_any_pool_size(
        fates in vec((0u8..10, 0u64..120), 1..40),
        jobs in 2usize..9,
    ) {
        // fate < 2 → the point prunes (~20 % per case); the rest continue.
        let points: Vec<(usize, bool, u64)> = fates
            .iter()
            .enumerate()
            .map(|(i, &(fate, delay))| (i, fate < 2, delay))
            .collect();
        let run = |_: usize, &(i, prunes, d): &(usize, bool, u64)| {
            std::thread::sleep(std::time::Duration::from_micros(d));
            if prunes {
                PointOutcome::Prune(i * 10)
            } else {
                PointOutcome::Continue(i * 10)
            }
        };
        // Serial reference.
        let mut expect: Vec<Option<usize>> = Vec::new();
        for &(i, prunes, _) in &points {
            expect.push(Some(i * 10));
            if prunes {
                break;
            }
        }
        expect.resize(points.len(), None);
        let serial = try_map_ordered_pruned(
            1, &points, |&(i, _, _)| i.to_string(), run, |_, _| {},
        ).expect("no panics");
        prop_assert_eq!(&serial, &expect);
        let pooled = try_map_ordered_pruned(
            jobs, &points, |&(i, _, _)| i.to_string(), run, |_, _| {},
        ).expect("no panics");
        prop_assert_eq!(&pooled, &expect, "jobs={}", jobs);
    }

    /// Without any pruning point the pruned map degenerates to the plain
    /// ordered map: every slot filled, in submission order.
    #[test]
    fn pruned_map_without_prunes_is_complete_and_ordered(
        delays_us in vec(0u64..150, 0..30),
        jobs in 1usize..9,
    ) {
        let points: Vec<(usize, u64)> = delays_us.iter().copied().enumerate().collect();
        let out = try_map_ordered_pruned(
            jobs,
            &points,
            |&(i, _)| i.to_string(),
            |_, &(i, d)| {
                std::thread::sleep(std::time::Duration::from_micros(d));
                PointOutcome::Continue(i)
            },
            |_, _| {},
        )
        .expect("no panics");
        let want: Vec<Option<usize>> = (0..points.len()).map(Some).collect();
        prop_assert_eq!(out, want, "jobs={}", jobs);
    }
}
