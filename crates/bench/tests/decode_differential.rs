//! Decode differential: the pre-decoded dispatch path and the un-decoded
//! reference interpreter (`VmConfig::slow_dispatch`, the path CI forces
//! with `HTMGIL_FORCE_SLOW_DISPATCH=1`) must produce **identical** run
//! reports — same stdout, same cycle counts, same abort statistics, same
//! conflict attribution — for every workload shape and runtime mode.
//!
//! The comparison is on the serialized report JSON, which contains only
//! simulated quantities, so a single string equality covers every counter
//! the harness exposes. Pre-decoding is a host-side representation change;
//! any divergence here means the decoder or a superinstruction leaked into
//! simulated behaviour.

use bench::{run_workload_with, vm_config_for};
use htm_gil_core::{ExecConfig, Json, LengthPolicy, RuntimeMode};
use machine_sim::MachineProfile;
use workloads::Workload;

/// Run `w` in `mode` with the given dispatch path and return the report
/// JSON (compact — the comparison artifact).
fn report_json(w: &Workload, mode: RuntimeMode, slow: bool) -> String {
    let profile = MachineProfile::zec12();
    let cfg = ExecConfig::new(mode, &profile);
    let mut vm_config = vm_config_for(w.threads);
    vm_config.slow_dispatch = slow;
    run_workload_with(w, &profile, cfg, vm_config).to_json().to_compact()
}

fn assert_paths_agree(w: &Workload, mode: RuntimeMode) {
    let fast = report_json(w, mode, false);
    let slow = report_json(w, mode, true);
    if fast != slow {
        // Point at the first differing field instead of dumping two blobs.
        let f = Json::parse(&fast).expect("fast report parses");
        let s = Json::parse(&slow).expect("slow report parses");
        let (Json::Obj(ff), Json::Obj(sf)) = (&f, &s) else {
            panic!("{} [{mode:?}]: reports are not objects", w.name);
        };
        for ((fk, fv), (sk, sv)) in ff.iter().zip(sf.iter()) {
            assert_eq!(fk, sk, "{} [{mode:?}]: field order diverged", w.name);
            assert_eq!(
                fv.to_compact(),
                sv.to_compact(),
                "{} [{mode:?}]: decoded and reference dispatch disagree on {fk:?}",
                w.name
            );
        }
        panic!("{} [{mode:?}]: reports differ but fields match?", w.name);
    }
}

/// Quick fig8-shaped slice: the abort-investigation workloads at small
/// scale, where conflicts, overflows and the GIL fallback all fire.
fn quick_slice() -> Vec<Workload> {
    vec![
        workloads::micro::while_bench(4, 200),
        workloads::micro::iterator_bench(4, 120),
        workloads::npb::cg(4, 1),
        workloads::webrick::webrick(3, 24),
        workloads::taskserver::taskserver(4, 2, 16, 48, false),
    ]
}

#[test]
fn decoded_dispatch_matches_reference_under_htm_dynamic() {
    for w in quick_slice() {
        assert_paths_agree(&w, RuntimeMode::Htm { length: LengthPolicy::Dynamic });
    }
}

#[test]
fn decoded_dispatch_matches_reference_under_htm_fixed() {
    for w in quick_slice() {
        assert_paths_agree(&w, RuntimeMode::Htm { length: LengthPolicy::Fixed(16) });
    }
}

#[test]
fn decoded_dispatch_matches_reference_under_gil() {
    for w in quick_slice() {
        assert_paths_agree(&w, RuntimeMode::Gil);
    }
}

#[test]
fn decoded_dispatch_matches_reference_in_single_thread_fusion_regime() {
    // One live thread is where superinstruction fusion actually engages;
    // the fused pairs must leave every simulated number untouched.
    for w in [workloads::micro::while_bench(1, 500), workloads::npb::cg(1, 1)] {
        assert_paths_agree(&w, RuntimeMode::Htm { length: LengthPolicy::Dynamic });
        assert_paths_agree(&w, RuntimeMode::Gil);
    }
}
