//! Figure determinism: regenerating the Fig. 4 and Fig. 8 data with the
//! current code must reproduce the committed CSVs **byte for byte**.
//!
//! The whole simulation is deterministic (seeded scheduling, no wall-clock
//! or address-entropy inputs), so these files double as a high-coverage
//! regression oracle: any behavioural change anywhere in the stack — VM,
//! scheduler, TLE runtime, transactional memory — shifts at least one cell.
//! The ownership-directory rewrite of `TxMemory` was required to keep them
//! all identical.
//!
//! The tests are `#[ignore]`d because they re-run the full (non-quick)
//! sweeps, which takes ~10 s in release but minutes in debug; CI runs them
//! explicitly with `cargo test --release -p bench -- --ignored`.

use std::fs;

fn committed(csv_name: &str) -> String {
    let path = bench::results_dir().join(format!("{csv_name}.csv"));
    fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()))
}

#[test]
#[ignore = "full fig4 sweep (seconds in release, minutes in debug); CI runs with --ignored"]
fn fig4_csvs_match_committed_bytes() {
    for panel in bench::figures::fig4_panels(false) {
        assert_eq!(
            panel.set.to_csv(),
            committed(&panel.csv_name),
            "{} drifted from committed bytes",
            panel.csv_name
        );
    }
}

#[test]
#[ignore = "full fig8 sweep (seconds in release, minutes in debug); CI runs with --ignored"]
fn fig8_csvs_match_committed_bytes() {
    for panel in bench::figures::fig8_abort_panels(false) {
        assert_eq!(
            panel.set.to_csv(),
            committed(&panel.csv_name),
            "{} drifted from committed bytes",
            panel.csv_name
        );
    }
    let b = bench::figures::fig8_breakdown(false);
    assert_eq!(b.csv, committed(&b.csv_name), "{} drifted from committed bytes", b.csv_name);
}
