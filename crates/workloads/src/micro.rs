//! The two embarrassingly parallel micro-benchmarks of paper Fig. 4.
//!
//! Each thread runs the workload body shown in the figure: the *While*
//! benchmark is a plain counted loop of `opt_plus`/`opt_le` bytecodes; the
//! *Iterator* benchmark does the same accumulation through `Range#each`
//! with a block, exercising `send`/`invokeblock` dispatch. The paper
//! reports 10–11× speedups over the GIL at 12 threads on zEC12.

use crate::{instantiate, Workload};

const WHILE_SRC: &str = r#"
# Fig. 4 (left): the While micro-benchmark, one workload per thread.
def workload(num_iter)
  x = 0
  i = 1
  while i <= num_iter
    x += i
    i += 1
  end
  x
end

nthreads = %THREADS%
iters = %SCALE%
results = Array.new(nthreads, 0)
threads = []
nthreads.times do |t|
  threads << Thread.new(t) do |tid|
    results[tid] = workload(iters)
  end
end
threads.each do |t|
  t.join()
end
total = 0
results.each do |r|
  total += r
end
puts(total)
"#;

const ITER_SRC: &str = r#"
# Fig. 4 (right): the Iterator micro-benchmark, one workload per thread.
def workload(num_iter)
  x = 0
  (1..num_iter).each do |i|
    x += i
  end
  x
end

nthreads = %THREADS%
iters = %SCALE%
results = Array.new(nthreads, 0)
threads = []
nthreads.times do |t|
  threads << Thread.new(t) do |tid|
    results[tid] = workload(iters)
  end
end
threads.each do |t|
  t.join()
end
total = 0
results.each do |r|
  total += r
end
puts(total)
"#;

/// While benchmark: `iters` loop iterations per thread. Each thread
/// completes one workload, so the figure's throughput metric counts
/// `threads` work units (the paper plots workloads/second).
pub fn while_bench(threads: usize, iters: usize) -> Workload {
    instantiate("While", WHILE_SRC, threads, iters, threads as u64)
}

/// Iterator benchmark: `iters` block invocations per thread.
pub fn iterator_bench(threads: usize, iters: usize) -> Workload {
    instantiate("Iterator", ITER_SRC, threads, iters, threads as u64)
}

/// Expected stdout for either micro-benchmark (n·Σ1..iters).
pub fn expected_output(threads: usize, iters: usize) -> String {
    let per = (iters as i64) * (iters as i64 + 1) / 2;
    format!("{}", per * threads as i64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn templates_instantiate() {
        let w = while_bench(12, 1000);
        assert!(w.source.contains("nthreads = 12"));
        assert!(w.source.contains("iters = 1000"));
        assert_eq!(w.threads, 12);
    }

    #[test]
    fn expected_math() {
        assert_eq!(expected_output(1, 10), "55");
        assert_eq!(expected_output(4, 1000), format!("{}", 4 * 500500));
    }
}
