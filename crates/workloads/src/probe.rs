//! The write-set-shrinking probe of paper Fig. 6(a).
//!
//! "In one process, it first wrote 24 KB 10,000 times, and then 20 KB
//! 10,000 times, and so on. We measured the transaction success ratios
//! for each 100 iterations." On real Haswell the success ratio recovers
//! only *gradually* after the size drops below the ~19 KB capacity — the
//! learning-predictor behaviour `htm-sim` models.
//!
//! The probe is not a Ruby program (the paper's wasn't either — it was a
//! C test): the harness drives `htm-sim` directly, writing `size_kb` of
//! distinct lines per transaction and recording per-window success
//! ratios. This module only prepares the size schedule; the driving loop
//! lives in `bench/src/bin/fig6a_writeset.rs` and in the integration
//! tests.

use crate::Workload;

/// Phase schedule: each `(size_kb, iterations)` pair.
#[derive(Debug, Clone)]
pub struct ProbeSchedule {
    pub phases: Vec<(usize, usize)>,
}

/// Build the Fig. 6(a) schedule: the given sizes, `iters` transactions
/// each.
pub fn schedule(sizes_kb: &[usize], iters: usize) -> ProbeSchedule {
    ProbeSchedule { phases: sizes_kb.iter().map(|&s| (s, iters)).collect() }
}

/// A trivially-valid workload wrapper so the probe appears in the
/// registry (its Ruby body just documents itself; the real driving is
/// native).
pub fn writeset_probe(sizes_kb: &[usize], iters: usize) -> Workload {
    let sched = schedule(sizes_kb, iters);
    let mut src = String::from("# native probe: sizes ");
    for (s, _) in &sched.phases {
        src.push_str(&format!("{s}KB "));
    }
    src.push_str("\nputs(\"probe\")\n");
    Workload { name: "WriteSetProbe", source: src, threads: 1, requests: 0 }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedule_shape() {
        let s = schedule(&[24, 20, 16, 12], 10_000);
        assert_eq!(s.phases.len(), 4);
        assert_eq!(s.phases[0], (24, 10_000));
        assert_eq!(s.phases[3], (12, 10_000));
    }
}
