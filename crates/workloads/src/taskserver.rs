//! The task-execution-server scenario: N clients submit heterogeneous
//! tasks over simulated connections into a bounded queue; a worker pool
//! executes them and publishes per-task results.
//!
//! This is the latency-oriented counterpart to [`crate::webrick`]: where
//! WEBrick measures throughput of a uniform request stream, the task
//! server measures *queueing* — each task's enqueue, dequeue, completion
//! (or shed, when the bounded queue rejects under load) is reported to
//! the executor via `Kernel#srv_mark`, and the run report carries
//! p50/p90/p99/p999 latency percentiles plus a queue-depth time series.
//!
//! Structure of the Ruby program:
//!
//! * `%CLIENTS%` client threads each submit `%SCALE% / %CLIENTS%` tasks.
//!   A submission waits on its connection (`Kernel#conn_wait`, the
//!   deterministic per-connection latency model), then pushes the task
//!   id into a Mutex-protected ring buffer of capacity `%QBOUND%`.
//! * When the queue is full, behaviour depends on `%SHED%`: `0` blocks
//!   the client (backpressure — it backs off on simulated I/O and
//!   retries), `1` sheds the task (marks it and moves on).
//! * `%WORKERS%` worker threads pop ids and execute one of four task
//!   classes keyed by `id % 4`: CPU-bound arithmetic, allocation-heavy
//!   string building, blocking I/O, and shared-state mutation under a
//!   second Mutex.
//! * Shutdown is a graceful drain: the main thread joins the clients,
//!   sets the closed flag under the queue lock, and joins the workers —
//!   workers exit only once the queue is closed *and* empty, so no
//!   accepted task is lost.
//!
//! With shedding off every task completes, results are pure functions of
//! the task id, and the final checksum line is identical across runtime
//! modes — so the scenario composes with the GIL-oracle differential
//! checker and the chaos suite. With shedding on, *which* tasks are shed
//! depends on timing and therefore on the runtime mode; shed
//! configurations are for latency sweeps (each point is still fully
//! deterministic), not for cross-mode output comparison.

use crate::Workload;

const TASKSERVER_SRC: &str = r#"
NCLIENTS = %CLIENTS%
NWORKERS = %WORKERS%
NTASKS = %SCALE%
QBOUND = %QBOUND%
SHED = %SHED%
PER = %PER%

$check = 0
$tally = 0

qm = Mutex.new()
tm = Mutex.new()
qbuf = Array.new(QBOUND, 0)
qstate = Array.new(3, 0)
# Per-worker checksum accumulators — deliberately a local (worker blocks
# share this scope): which worker runs which task is timing-dependent, so
# the partials differ across runtime modes and must stay out of the
# $-global heap digest the GIL oracle compares. Their order-independent
# sum ($check) is mode-invariant when nothing is shed.
wsum = Array.new(NWORKERS, 0)

clients = []
NCLIENTS.times do |c|
  clients << Thread.new(c) do |cid|
    k = 0
    while k < PER
      id = cid * PER + k
      conn_wait(cid, k)
      settled = 0
      back = 1
      while settled == 0
        qm.synchronize do
          if qstate[1] < QBOUND
            qbuf[(qstate[0] + qstate[1]) % QBOUND] = id
            qstate[1] = qstate[1] + 1
            srv_mark(0, id)
            settled = 1
          elsif SHED == 1
            srv_mark(3, id)
            settled = 1
          end
        end
        if settled == 0
          io_wait(back)
          if back < 32
            back = back * 2
          end
        end
      end
      k += 1
    end
  end
end

workers = []
NWORKERS.times do |w|
  workers << Thread.new(w) do |wid|
    running = 1
    back = 1
    while running == 1
      id = 0
      got = 0
      fin = 0
      qm.synchronize do
        if qstate[1] > 0
          id = qbuf[qstate[0]]
          qstate[0] = (qstate[0] + 1) % QBOUND
          qstate[1] = qstate[1] - 1
          srv_mark(1, id)
          got = 1
        elsif qstate[2] == 1
          fin = 1
        end
      end
      if got == 1
        cls = id % 4
        v = 0
        if cls == 0
          i = 1
          while i <= 40
            v += i * (id % 7 + 1)
            i += 1
          end
        elsif cls == 1
          s = ""
          j = 0
          while j < 6
            s = s + "item" + (id % 5).to_s
            j += 1
          end
          v = (id % 5 + 1) * 30
        elsif cls == 2
          io_wait(1)
          v = id % 97 + 1
        else
          v = id % 13 + 1
          tm.synchronize do
            $tally += v
          end
        end
        wsum[wid] = wsum[wid] + v * (id % 3 + 1)
        srv_mark(2, id)
        back = 1
      elsif fin == 1
        running = 0
      else
        io_wait(back)
        if back < 32
          back = back * 2
        end
      end
    end
  end
end

clients.each do |t|
  t.join()
end
qm.synchronize do
  qstate[2] = 1
end
workers.each do |t|
  t.join()
end
i = 0
while i < NWORKERS
  $check += wsum[i]
  i += 1
end
puts($check.to_s + ":" + $tally.to_s)
"#;

/// Task server: `clients` submitting threads, `workers` executing
/// threads, a bounded queue of `qbound` slots, `tasks` total tasks.
/// `shed` selects the full-queue policy: `false` blocks the client
/// (backpressure), `true` drops the task with a shed mark.
///
/// `tasks` must divide evenly among `clients`.
pub fn taskserver(
    clients: usize,
    workers: usize,
    qbound: usize,
    tasks: usize,
    shed: bool,
) -> Workload {
    assert!(clients > 0 && workers > 0 && qbound > 0, "degenerate server shape");
    assert_eq!(tasks % clients, 0, "tasks must divide evenly among clients");
    let source = TASKSERVER_SRC
        .replace("%CLIENTS%", &clients.to_string())
        .replace("%WORKERS%", &workers.to_string())
        .replace("%SCALE%", &tasks.to_string())
        .replace("%QBOUND%", &qbound.to_string())
        .replace("%SHED%", if shed { "1" } else { "0" })
        .replace("%PER%", &(tasks / clients).to_string());
    Workload { name: "TaskServer", source, threads: clients + workers, requests: tasks as u64 }
}

/// The value a worker computes for task `id` (mirrors the Ruby task
/// classes exactly).
fn task_value(id: u64) -> u64 {
    match id % 4 {
        0 => 820 * (id % 7 + 1), // sum 1..=40 scaled
        1 => (id % 5 + 1) * 30,  // string length × factor
        2 => id % 97 + 1,        // I/O task's token
        _ => id % 13 + 1,        // shared-tally increment
    }
}

/// The exact stdout a no-shed run of `taskserver(_, _, _, tasks, false)`
/// must produce in every runtime mode — the cross-mode oracle for the
/// queue-semantics tests.
pub fn expected_stdout(tasks: usize) -> String {
    let mut check: u64 = 0;
    let mut tally: u64 = 0;
    for id in 0..tasks as u64 {
        let v = task_value(id);
        check += v * (id % 3 + 1);
        if id % 4 == 3 {
            tally += v;
        }
    }
    format!("{check}:{tally}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn template_instantiates_and_parses() {
        let w = taskserver(4, 2, 8, 64, false);
        assert!(w.source.contains("NCLIENTS = 4"));
        assert!(w.source.contains("NWORKERS = 2"));
        assert!(w.source.contains("QBOUND = 8"));
        assert!(w.source.contains("SHED = 0"));
        assert!(w.source.contains("PER = 16"));
        assert_eq!(w.threads, 6);
        assert_eq!(w.requests, 64);
        ruby_lang::parse_program(&w.source).unwrap();
    }

    #[test]
    fn shed_variant_flips_the_policy_flag() {
        let w = taskserver(2, 2, 1, 8, true);
        assert!(w.source.contains("SHED = 1"));
        ruby_lang::parse_program(&w.source).unwrap();
    }

    #[test]
    #[should_panic(expected = "divide evenly")]
    fn uneven_split_is_rejected() {
        taskserver(3, 1, 4, 10, false);
    }

    #[test]
    fn expected_stdout_matches_task_classes() {
        // First four ids by hand: id 0 → cpu 820·1, id 1 → alloc 2·30,
        // id 2 → io 3, id 3 → shared 4.
        // check = 820·1 + 60·2 + 3·3 + 4·1 = 953; tally = 4.
        assert_eq!(expected_stdout(4), "953:4");
    }
}
