//! # workloads
//!
//! The benchmark programs of the paper's evaluation (§5.3), written in the
//! Ruby subset:
//!
//! * [`micro`] — the While and Iterator micro-benchmarks of Fig. 4;
//! * [`npb`] — scaled-down ports of the seven Ruby NAS Parallel
//!   Benchmarks (BT, CG, FT, IS, LU, MG, SP) keeping each kernel's
//!   parallelization structure and memory character;
//! * [`webrick`] — the WEBrick HTTP-server model (request parsing with
//!   regexes, response building, blocking-I/O points that release the
//!   GIL);
//! * [`rails`] — the Ruby-on-Rails model (routing → controller → query on
//!   the relational-store substrate → template render);
//! * [`taskserver`] — the task-execution-server scenario (clients →
//!   bounded queue with backpressure/shedding → worker pool) whose
//!   lifecycle marks feed the latency-percentile reporting;
//! * [`probe`] — the write-set-shrinking probe of Fig. 6(a).
//!
//! Every workload is a [`Workload`]: a named source template plus
//! parameters, instantiated for a thread/client count and an optional
//! scale factor. Sources only print *after* joining all threads and
//! combine per-thread results in thread-id order, so output is identical
//! across runtime modes — the serializability oracle used by the
//! integration tests.

pub mod micro;
pub mod npb;
pub mod probe;
pub mod rails;
pub mod taskserver;
pub mod webrick;

/// A runnable benchmark program.
#[derive(Debug, Clone)]
pub struct Workload {
    /// Short name used in reports ("BT", "While", "WEBrick", …).
    pub name: &'static str,
    /// Ruby source, fully instantiated.
    pub source: String,
    /// Worker-thread (or concurrent-client) count baked into the source.
    pub threads: usize,
    /// The work metric: completed requests for server workloads, 0 for
    /// fixed-work benchmarks (which use inverse runtime).
    pub requests: u64,
}

/// Template instantiation: replaces `%THREADS%` and `%SCALE%`.
pub(crate) fn instantiate(
    name: &'static str,
    template: &str,
    threads: usize,
    scale: usize,
    requests: u64,
) -> Workload {
    let source =
        template.replace("%THREADS%", &threads.to_string()).replace("%SCALE%", &scale.to_string());
    Workload { name, source, threads, requests }
}

/// The seven NPB kernels, in the paper's order.
pub fn npb_all(threads: usize, scale: usize) -> Vec<Workload> {
    vec![
        npb::bt(threads, scale),
        npb::cg(threads, scale),
        npb::ft(threads, scale),
        npb::is(threads, scale),
        npb::lu(threads, scale),
        npb::mg(threads, scale),
        npb::sp(threads, scale),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn instantiation_substitutes() {
        let w = instantiate("X", "n = %THREADS%\ns = %SCALE%", 4, 10, 0);
        assert_eq!(w.source, "n = 4\ns = 10");
        assert_eq!(w.threads, 4);
    }

    #[test]
    fn all_sources_parse() {
        let mut all = vec![
            micro::while_bench(4, 100),
            micro::iterator_bench(4, 100),
            webrick::webrick(4, 20),
            rails::rails(4, 20),
            taskserver::taskserver(4, 2, 8, 32, false),
            taskserver::taskserver(4, 2, 2, 32, true),
            probe::writeset_probe(&[24, 20, 16, 12], 50),
        ];
        all.extend(npb_all(4, 1));
        for w in all {
            ruby_lang::parse_program(&w.source).unwrap_or_else(|e| panic!("{}: {e}", w.name));
        }
    }

    #[test]
    fn all_sources_compile() {
        let mut all = vec![micro::while_bench(2, 10), micro::iterator_bench(2, 10)];
        all.extend(npb_all(2, 1));
        all.push(webrick::webrick(2, 4));
        all.push(rails::rails(2, 4));
        all.push(taskserver::taskserver(2, 2, 4, 8, false));
        for w in all {
            let mut p = ruby_vm::Program::default();
            ruby_vm::compile::compile_source(&w.source, &mut p)
                .unwrap_or_else(|e| panic!("{}: {e}", w.name));
        }
    }
}
