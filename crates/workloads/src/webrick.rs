//! The WEBrick HTTP-server model (paper §5.3/§5.5).
//!
//! The real measurement serves 30 000 requests for a 46-byte page from
//! concurrent clients, spawning one Ruby thread per request. What drives
//! the paper's result:
//!
//! * the GIL is **released during I/O**, so even GIL-mode WEBrick gains
//!   17–26 % from request overlap;
//! * request handling is string/regex heavy — the regex engine is a
//!   C-level call with no yield points, so HTM suffers footprint
//!   overflows there, making short transactions (HTM-1) best;
//! * each request allocates aggressively (parsing, header splitting,
//!   response building).
//!
//! Our model keeps all three. One deliberate simplification (documented
//! in DESIGN.md): instead of one OS thread per request — which would need
//! unbounded thread-slot recycling — `%THREADS%` persistent worker
//! threads each process a share of the request stream, taking a request
//! from a shared Mutex-protected queue position, doing the blocking-I/O
//! points (accept/read/write), parsing with regexes and building the
//! response. Thread-churn allocation per request is emulated by
//! allocating the per-request state fresh each time.

use crate::{instantiate, Workload};

const WEBRICK_SRC: &str = r#"
NCLIENTS = %THREADS%
NREQUESTS = %SCALE%

REQ_LINE = Regexp.new("GET (/[a-z0-9_/.]*) HTTP/1\\.([01])")
HDR = Regexp.new("([A-Za-z-]+): (.*)")

PATHS = ["/", "/index.html", "/about.html", "/data/list", "/static/app.js"]

def handle_request(req, seq)
  # Parse the request line (regex: the paper's overflow hot spot).
  m = REQ_LINE.match(req[0])
  if m.nil?
    return "HTTP/1.1 400 Bad Request\r\n\r\n"
  end
  path = m[1]
  # Parse every header into a hash, like WEBrick::HTTPRequest does.
  headers = Hash.new()
  i = 1
  n = req.length
  while i < n
    hm = HDR.match(req[i])
    unless hm.nil?
      headers[hm[1].downcase] = hm[2]
    end
    i += 1
  end
  host = headers["host"]
  host = "" if host.nil?
  # Normalize the path (split + rejoin, rejecting dot segments) and
  # unescape it character by character, as WEBrick::HTTPUtils does.
  clean = ""
  path.split("/").each do |seg|
    unless seg.empty?
      if seg != "."
        decoded = ""
        i = 0
        n = seg.length
        while i < n
          ch = seg[i]
          if ch == "+"
            decoded = decoded + " "
          else
            decoded = decoded + ch
          end
          i += 1
        end
        clean = clean + "/" + decoded
      end
    end
  end
  clean = "/" if clean.empty?
  # Build the 46-byte-page response with WEBrick-style headers.
  body = "<html><body>hello " + host + "</body></html>"
  resp = "HTTP/1.1 200 OK\r\n"
  resp = resp + "Server: WEBrick/1.3.1 (Ruby/1.9.3)\r\n"
  resp = resp + "Date: Sat, 15 Feb 2014 00:00:" + (seq % 60).to_s + " GMT\r\n"
  resp = resp + "Content-Type: text/html; charset=utf-8\r\n"
  resp = resp + "Content-Length: " + body.length.to_s + "\r\n"
  resp = resp + "Connection: Keep-Alive\r\n"
  resp = resp + "\r\n" + body
  # Access-log line (WEBrick formats one per request).
  log = host + " - - [" + seq.to_s + "] \"GET " + clean + " HTTP/1.1\" 200 " + body.length.to_s
  if log.length == 0
    resp = ""
  end
  resp
end

served = Array.new(NCLIENTS, 0)
bytes = Array.new(NCLIENTS, 0)
threads = []
NCLIENTS.times do |t|
  threads << Thread.new(t) do |tid|
    count = 0
    total = 0
    k = tid
    while k < NREQUESTS
      # Blocking socket read on the keep-alive connection — the GIL is
      # released here (the response write is buffered and non-blocking).
      io_wait(1)
      path = PATHS[k % 5]
      req = ["GET " + path + " HTTP/1.1",
             "Host: bench.example.com",
             "User-Agent: paper-client/1.0",
             "Accept: text/html"]
      resp = handle_request(req, k)
      count += 1
      total += resp.length
      k += NCLIENTS
    end
    served[tid] = count
    bytes[tid] = total
  end
end
threads.each do |t|
  t.join()
end
total_served = 0
total_bytes = 0
served.each do |c|
  total_served += c
end
bytes.each do |v|
  total_bytes += v
end
puts("served " + total_served.to_s + " bytes " + total_bytes.to_s)
"#;

/// WEBrick model: `clients` concurrent connections, `requests` total.
pub fn webrick(clients: usize, requests: usize) -> Workload {
    let mut w = instantiate("WEBrick", WEBRICK_SRC, clients, requests, requests as u64);
    w.requests = requests as u64;
    w
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn template_instantiates() {
        let w = webrick(4, 100);
        assert!(w.source.contains("NCLIENTS = 4"));
        assert!(w.source.contains("NREQUESTS = 100"));
        assert_eq!(w.requests, 100);
        ruby_lang::parse_program(&w.source).unwrap();
    }
}
