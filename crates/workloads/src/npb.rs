//! Scaled-down ports of the seven Ruby NAS Parallel Benchmarks.
//!
//! The real Ruby NPB (Nose's translation of NPB 3.0) runs thousands of
//! lines per kernel; what the paper's evaluation depends on is each
//! program's *parallel structure* — which determines its inherent
//! scalability (paper §5.7: "the differences in the speedups … originated
//! from each program's own scalability characteristics") — and its
//! *memory behaviour* (float-heavy arithmetic that hammers the allocator,
//! stencil reads that cross thread boundaries, reductions and barriers).
//! Each port below keeps those:
//!
//! | kernel | structure kept |
//! |--------|----------------|
//! | BT     | grid sweeps + per-direction line solves, barrier per phase |
//! | CG     | sparse matvec + dot-product reductions every iteration |
//! | FT     | butterfly passes with all-threads barriers, complex arith |
//! | IS     | integer bucket sort: local histograms + ranked merge |
//! | LU     | red/black wavefront-style relaxation, two barriers/iter |
//! | MG     | V-cycle over 3 levels: restrict → relax → prolong |
//! | SP     | pentadiagonal-style scalar sweeps, lighter per-line work |
//!
//! All kernels: workers write partial results into per-thread slots;
//! `main` joins and combines in thread-id order, so the printed checksum
//! is identical across runtime modes and thread counts' interleavings
//! (floating-point combination order is fixed).

use crate::{instantiate, Workload};

/// Shared prologue: thread/row helpers used by every kernel.
const COMMON: &str = r#"
NT = %THREADS%
SCALE = %SCALE%

def row_lo(rows, tid)
  rows * tid / NT
end

def row_hi(rows, tid)
  rows * (tid + 1) / NT
end
"#;

const BT_SRC: &str = r#"
# BT: block-tridiagonal-style grid solver. Per iteration: a 5-point
# stencil RHS, then line solves along x and along y, a barrier between
# phases (the real BT's add/x_solve/y_solve/z_solve cadence). SCALE
# grows the grid (the paper's class knob), not the barrier count.
N = 12 + 6 * SCALE
ITERS = 2

grid = Array.build(N) { |i| Array.build(N) { |j| ((i * 7 + j * 3) % 10).to_f * 0.1 + 1.0 } }
rhs = Array.build(N) { |i| Array.new(N, 0.0) }
b = Barrier.new(NT)
sums = Array.new(NT, 0.0)

threads = []
NT.times do |t|
  threads << Thread.new(t) do |tid|
    lo = row_lo(N, tid)
    hi = row_hi(N, tid)
    it = 0
    while it < ITERS
      # RHS: 5-point stencil (reads cross row boundaries).
      i = lo
      while i < hi
        j = 0
        row = grid[i]
        up = grid[(i + N - 1) % N]
        dn = grid[(i + 1) % N]
        while j < N
          l = row[(j + N - 1) % N]
          r = row[(j + 1) % N]
          rhs[i][j] = 0.25 * (up[j] + dn[j] + l + r) - row[j]
          j += 1
        end
        i += 1
      end
      b.wait()
      # x-solve: forward/backward sweep along each owned row.
      i = lo
      while i < hi
        j = 1
        row = rhs[i]
        while j < N
          row[j] = row[j] - 0.4 * row[j - 1]
          j += 1
        end
        j = N - 2
        while j >= 0
          row[j] = row[j] - 0.4 * row[j + 1]
          j -= 1
        end
        i += 1
      end
      b.wait()
      # y-solve + update (columns need neighbours: barrier above).
      i = lo
      while i < hi
        j = 0
        while j < N
          grid[i][j] = grid[i][j] + 0.2 * rhs[i][j]
          j += 1
        end
        i += 1
      end
      b.wait()
      it += 1
    end
    s = 0.0
    i = lo
    while i < hi
      j = 0
      while j < N
        s += grid[i][j] * grid[i][j]
        j += 1
      end
      i += 1
    end
    sums[tid] = s
  end
end
threads.each do |t|
  t.join()
end
total = 0.0
sums.each do |s|
  total += s
end
puts("BT checksum " + (total * 1000.0).round.to_s)
"#;

const CG_SRC: &str = r#"
# CG: conjugate-gradient-style sparse matvec + reductions. The sparse
# matrix is banded (5 entries/row); every iteration does q = A p and two
# dot products combined across threads in tid order.
N = 160 * SCALE
ITERS = 4

cols = Array.build(N) { |i| [ i, (i + 1) % N, (i + 7) % N, (i + 31) % N, (i + N - 1) % N ] }
vals = Array.build(N) { |i| [ 2.5, -0.5, 0.25, -0.125, -0.5 ] }
p = Array.build(N) { |i| 1.0 + (i % 5).to_f * 0.01 }
q = Array.new(N, 0.0)
partial = Array.new(NT, 0.0)
b = Barrier.new(NT)
rhos = Array.new(NT, 0.0)

threads = []
NT.times do |t|
  threads << Thread.new(t) do |tid|
    lo = row_lo(N, tid)
    hi = row_hi(N, tid)
    it = 0
    while it < ITERS
      # q = A p over owned rows.
      i = lo
      while i < hi
        c = cols[i]
        v = vals[i]
        s = 0.0
        k = 0
        while k < 5
          s += v[k] * p[c[k]]
          k += 1
        end
        q[i] = s
        i += 1
      end
      # rho = p . q (per-thread partials; main-order combination).
      s = 0.0
      i = lo
      while i < hi
        s += p[i] * q[i]
        i += 1
      end
      partial[tid] = s
      b.wait()
      # Everyone reads all partials in the same (tid) order.
      rho = 0.0
      k = 0
      while k < NT
        rho += partial[k]
        k += 1
      end
      # p = q / rho over owned rows (normalization step).
      inv = 1.0 / rho
      i = lo
      while i < hi
        p[i] = q[i] * inv * N.to_f
        i += 1
      end
      b.wait()
      rhos[tid] = rho
      it += 1
    end
  end
end
threads.each do |t|
  t.join()
end
puts("CG rho " + (rhos[0] * 100.0).round.to_s)
"#;

const FT_SRC: &str = r#"
# FT: FFT-style butterfly passes over a complex array (split re/im),
# double-buffered (read generation g, write generation g+1) with an
# all-threads barrier between passes, then a checksum reduction.
N = 256 * SCALE
PASSES = 5

re0 = Array.build(N) { |i| ((i * 13 + 5) % 17).to_f * 0.1 }
im0 = Array.build(N) { |i| ((i * 7 + 3) % 19).to_f * 0.1 }
re1 = Array.new(N, 0.0)
im1 = Array.new(N, 0.0)
b = Barrier.new(NT)
sums_re = Array.new(NT, 0.0)
sums_im = Array.new(NT, 0.0)

threads = []
NT.times do |t|
  threads << Thread.new(t) do |tid|
    lo = row_lo(N, tid)
    hi = row_hi(N, tid)
    pass = 0
    stride = 1
    while pass < PASSES
      if pass % 2 == 0
        src_re = re0
        src_im = im0
        dst_re = re1
        dst_im = im1
      else
        src_re = re1
        src_im = im1
        dst_re = re0
        dst_im = im0
      end
      i = lo
      while i < hi
        j = (i + stride) % N
        ar = src_re[i]
        ai = src_im[i]
        br = src_re[j]
        bi = src_im[j]
        # butterfly with twiddle (0.8, 0.6)
        tr = br * 0.8 - bi * 0.6
        ti = br * 0.6 + bi * 0.8
        dst_re[i] = ar + tr
        dst_im[i] = ai + ti
        i += 1
      end
      b.wait()
      stride = stride * 2
      pass += 1
    end
    if PASSES % 2 == 0
      fin_re = re0
      fin_im = im0
    else
      fin_re = re1
      fin_im = im1
    end
    sr = 0.0
    si = 0.0
    i = lo
    while i < hi
      sr += fin_re[i]
      si += fin_im[i]
      i += 1
    end
    sums_re[tid] = sr
    sums_im[tid] = si
  end
end
threads.each do |t|
  t.join()
end
tr = 0.0
ti = 0.0
k = 0
while k < NT
  tr += sums_re[k]
  ti += sums_im[k]
  k += 1
end
puts("FT checksum " + (tr * 10.0).round.to_s + " " + (ti * 10.0).round.to_s)
"#;

const IS_SRC: &str = r#"
# IS: integer bucket sort. Each thread generates its share of keys with a
# deterministic LCG, counts them into a PRIVATE histogram, then all
# histograms merge over disjoint bucket ranges (rank step).
NKEYS = 1200 * SCALE
NBUCKETS = 64

hist = Array.build(NT) { |t| Array.new(NBUCKETS, 0) }
ranks = Array.new(NBUCKETS, 0)
b = Barrier.new(NT)
checks = Array.new(NT, 0)

threads = []
NT.times do |t|
  threads << Thread.new(t) do |tid|
    lo = NKEYS * tid / NT
    hi = NKEYS * (tid + 1) / NT
    mine = hist[tid]
    seed = 12345 + tid * 7919
    i = lo
    while i < hi
      seed = (seed * 1103515245 + 12345) % 2147483648
      key = seed % NBUCKETS
      mine[key] = mine[key] + 1
      i += 1
    end
    b.wait()
    # Rank: each thread sums a disjoint range of buckets across all
    # thread-local histograms.
    blo = NBUCKETS * tid / NT
    bhi = NBUCKETS * (tid + 1) / NT
    k = blo
    while k < bhi
      c = 0
      j = 0
      while j < NT
        c += hist[j][k]
        j += 1
      end
      ranks[k] = c
      k += 1
    end
    b.wait()
    # Verification: weighted checksum of the shared rank table.
    s = 0
    k = 0
    while k < NBUCKETS
      s += ranks[k] * (k + 1)
      k += 1
    end
    checks[tid] = s
  end
end
threads.each do |t|
  t.join()
end
puts("IS check " + checks[0].to_s)
"#;

const LU_SRC: &str = r#"
# LU: SSOR-style relaxation with red/black ordering (two half-sweeps with
# a barrier each — the wavefront dependency made explicit). SCALE
# grows the grid, not the barrier count.
N = 12 + 6 * SCALE
ITERS = 2

u = Array.build(N) { |i| Array.build(N) { |j| ((i + 2 * j) % 8).to_f * 0.125 } }
b = Barrier.new(NT)
sums = Array.new(NT, 0.0)

threads = []
NT.times do |t|
  threads << Thread.new(t) do |tid|
    lo = row_lo(N, tid)
    hi = row_hi(N, tid)
    it = 0
    while it < ITERS
      color = 0
      while color < 2
        i = lo
        while i < hi
          row = u[i]
          up = u[(i + N - 1) % N]
          dn = u[(i + 1) % N]
          j = (i + color) % 2
          while j < N
            row[j] = 0.6 * row[j] + 0.1 * (up[j] + dn[j] + row[(j + N - 1) % N] + row[(j + 1) % N])
            j += 2
          end
          i += 1
        end
        b.wait()
        color += 1
      end
      it += 1
    end
    s = 0.0
    i = lo
    while i < hi
      j = 0
      while j < N
        s += u[i][j]
        j += 1
      end
      i += 1
    end
    sums[tid] = s
  end
end
threads.each do |t|
  t.join()
end
total = 0.0
sums.each do |s|
  total += s
end
puts("LU norm " + (total * 1000.0).round.to_s)
"#;

const MG_SRC: &str = r#"
# MG: one V-cycle per iteration over 3 grid levels: restrict to coarse,
# relax there (Jacobi, double-buffered), prolongate back, relax on fine.
# Barrier per level change; no in-place neighbour reads, so the result is
# interleaving-independent.
NF = 96 * SCALE
ITERS = 2

fine = Array.build(NF) { |i| ((i * 5 + 1) % 9).to_f * 0.25 }
fine2 = Array.new(NF, 0.0)
mid = Array.new(NF / 2, 0.0)
coarse = Array.new(NF / 4, 0.0)
coarse2 = Array.new(NF / 4, 0.0)
b = Barrier.new(NT)
sums = Array.new(NT, 0.0)

threads = []
NT.times do |t|
  threads << Thread.new(t) do |tid|
    it = 0
    while it < ITERS
      # Restrict fine -> mid.
      n = NF / 2
      lo = row_lo(n, tid)
      hi = row_hi(n, tid)
      i = lo
      while i < hi
        mid[i] = 0.5 * fine[2 * i] + 0.25 * (fine[(2 * i + 1) % NF] + fine[(2 * i + NF - 1) % NF])
        i += 1
      end
      b.wait()
      # Restrict mid -> coarse.
      n = NF / 4
      lo = row_lo(n, tid)
      hi = row_hi(n, tid)
      i = lo
      while i < hi
        coarse[i] = 0.5 * mid[2 * i] + 0.5 * mid[(2 * i + 1) % (NF / 2)]
        i += 1
      end
      b.wait()
      # Relax coarse (Jacobi into coarse2, then publish back).
      i = lo
      while i < hi
        coarse2[i] = 0.5 * coarse[i] + 0.25 * (coarse[(i + 1) % n] + coarse[(i + n - 1) % n])
        i += 1
      end
      b.wait()
      i = lo
      while i < hi
        coarse[i] = coarse2[i]
        i += 1
      end
      b.wait()
      # Prolongate coarse -> fine and relax (Jacobi via fine2).
      n = NF
      lo = row_lo(n, tid)
      hi = row_hi(n, tid)
      i = lo
      while i < hi
        fine2[i] = fine[i] + 0.5 * coarse[(i / 4) % (NF / 4)]
        i += 1
      end
      b.wait()
      i = lo
      while i < hi
        fine[i] = 0.5 * fine2[i] + 0.25 * (fine2[(i + 1) % n] + fine2[(i + n - 1) % n])
        i += 1
      end
      b.wait()
      it += 1
    end
    lo = row_lo(NF, tid)
    hi = row_hi(NF, tid)
    s = 0.0
    i = lo
    while i < hi
      s += fine[i]
      i += 1
    end
    sums[tid] = s
  end
end
threads.each do |t|
  t.join()
end
total = 0.0
sums.each do |s|
  total += s
end
puts("MG norm " + (total * 1000.0).round.to_s)
"#;

const SP_SRC: &str = r#"
# SP: scalar pentadiagonal sweeps — like BT but scalar factors and a
# wider (±2) stencil. Double-buffered by iteration parity so neighbour
# reads never race with writes.
N = 12 + 6 * SCALE
ITERS = 2

ua = Array.build(N) { |i| Array.build(N) { |j| ((3 * i + j) % 7).to_f * 0.2 } }
ub = Array.build(N) { |i| Array.new(N, 0.0) }
b = Barrier.new(NT)
sums = Array.new(NT, 0.0)

threads = []
NT.times do |t|
  threads << Thread.new(t) do |tid|
    lo = row_lo(N, tid)
    hi = row_hi(N, tid)
    it = 0
    while it < ITERS
      if it % 2 == 0
        src = ua
        dst = ub
      else
        src = ub
        dst = ua
      end
      i = lo
      while i < hi
        row = src[i]
        a = src[(i + N - 2) % N]
        c = src[(i + 2) % N]
        out = dst[i]
        j = 0
        while j < N
          out[j] = 0.5 * row[j] + 0.125 * (a[j] + c[j] + row[(j + 2) % N] + row[(j + N - 2) % N])
          j += 1
        end
        i += 1
      end
      b.wait()
      it += 1
    end
    if ITERS % 2 == 0
      fin = ua
    else
      fin = ub
    end
    s = 0.0
    i = lo
    while i < hi
      j = 0
      while j < N
        s += fin[i][j]
        j += 1
      end
      i += 1
    end
    sums[tid] = s
  end
end
threads.each do |t|
  t.join()
end
total = 0.0
sums.each do |s|
  total += s
end
puts("SP norm " + (total * 1000.0).round.to_s)
"#;

fn kernel(name: &'static str, body: &str, threads: usize, scale: usize) -> Workload {
    let src = format!("{COMMON}\n{body}");
    instantiate(name, &src, threads, scale.max(1), 0)
}

pub fn bt(threads: usize, scale: usize) -> Workload {
    kernel("BT", BT_SRC, threads, scale)
}

pub fn cg(threads: usize, scale: usize) -> Workload {
    kernel("CG", CG_SRC, threads, scale)
}

pub fn ft(threads: usize, scale: usize) -> Workload {
    kernel("FT", FT_SRC, threads, scale)
}

pub fn is(threads: usize, scale: usize) -> Workload {
    kernel("IS", IS_SRC, threads, scale)
}

pub fn lu(threads: usize, scale: usize) -> Workload {
    kernel("LU", LU_SRC, threads, scale)
}

pub fn mg(threads: usize, scale: usize) -> Workload {
    kernel("MG", MG_SRC, threads, scale)
}

pub fn sp(threads: usize, scale: usize) -> Workload {
    kernel("SP", SP_SRC, threads, scale)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kernels_have_distinct_names_and_parse() {
        let all = crate::npb_all(3, 1);
        let names: Vec<&str> = all.iter().map(|w| w.name).collect();
        assert_eq!(names, vec!["BT", "CG", "FT", "IS", "LU", "MG", "SP"]);
        for w in &all {
            ruby_lang::parse_program(&w.source).unwrap_or_else(|e| panic!("{}: {e}", w.name));
        }
    }

    #[test]
    fn scale_expands_iterations() {
        let w1 = bt(2, 1);
        let w3 = bt(2, 3);
        assert!(w1.source.contains("SCALE = 1"));
        assert!(w3.source.contains("SCALE = 3"));
    }
}
