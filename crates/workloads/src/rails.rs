//! The Ruby-on-Rails model (paper §5.3/§5.5).
//!
//! The paper's application "fetch[es] a list of books from a database"
//! (Rails 4 + SQLite3 + WEBrick, request-serialization lock disabled).
//! The pipeline below keeps the behaviours the evaluation hinges on:
//!
//! * routing by regex over the request path (overflow-abort source);
//! * a controller action querying the relational-store substrate (a full
//!   table scan per request — large read sets, result materialization);
//! * an ERB-like template render (string building, per-request garbage);
//! * blocking-I/O points around each request (GIL released);
//! * 87 % of Xeon HTM-dynamic aborts were footprint overflows — the scan
//!   plus render inside single C-level-ish regions reproduces that bias.

use crate::{instantiate, Workload};

const RAILS_SRC: &str = r#"
NCLIENTS = %THREADS%
NREQUESTS = %SCALE%

ROUTE_BOOKS = Regexp.new("^/books(/([0-9]+))?$")

# Seed the database: a books table (id, title, year, author_id).
BOOKS = Store.create(4)
titles = ["Dune", "Neuromancer", "Foundation", "Hyperion", "Ubik",
          "Solaris", "Contact", "Blindsight", "Anathem", "Accelerando"]
i = 0
while i < 30
  BOOKS.insert([i, titles[i % 10] + " vol." + (i / 10).to_s, 1960 + (i * 3) % 50, i % 7])
  i += 1
end

def render_books(rows)
  # ERB-ish template: header + one row per book + footer.
  out = "<html><head><title>Books</title></head><body><table>"
  rows.each do |r|
    out = out + "<tr><td>" + r[0].to_s + "</td><td>" + r[1] + "</td><td>" + r[2].to_s + "</td></tr>"
  end
  out + "</table></body></html>"
end

def books_controller(path)
  m = ROUTE_BOOKS.match(path)
  if m.nil?
    return "404 Not Found"
  end
  id = m[2]
  if id.nil?
    rows = BOOKS.all()
  else
    rows = BOOKS.scan_eq(0, id.to_i)
  end
  render_books(rows)
end

served = Array.new(NCLIENTS, 0)
bytes = Array.new(NCLIENTS, 0)
threads = []
NCLIENTS.times do |t|
  threads << Thread.new(t) do |tid|
    count = 0
    total = 0
    k = tid
    while k < NREQUESTS
      # Blocking read on the keep-alive connection (GIL released).
      io_wait(1)
      path = "/books"
      if k % 3 == 1
        path = "/books/" + (k % 30).to_s
      end
      if k % 17 == 2
        path = "/authors"
      end
      body = books_controller(path)
      count += 1
      total += body.length
      k += NCLIENTS
    end
    served[tid] = count
    bytes[tid] = total
  end
end
threads.each do |t|
  t.join()
end
total_served = 0
total_bytes = 0
served.each do |c|
  total_served += c
end
bytes.each do |v|
  total_bytes += v
end
puts("served " + total_served.to_s + " bytes " + total_bytes.to_s)
"#;

/// Rails model: `clients` concurrent clients, `requests` total.
pub fn rails(clients: usize, requests: usize) -> Workload {
    let mut w = instantiate("Rails", RAILS_SRC, clients, requests, requests as u64);
    w.requests = requests as u64;
    w
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn template_instantiates() {
        let w = rails(6, 60);
        assert!(w.source.contains("NCLIENTS = 6"));
        assert_eq!(w.requests, 60);
        ruby_lang::parse_program(&w.source).unwrap();
    }
}
