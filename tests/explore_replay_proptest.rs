//! Property tests for schedule-replay determinism (DESIGN.md §14).
//!
//! The exploration machinery is only sound if a `SchedPath` is a
//! *complete* name for an execution: replaying the same path must be
//! byte-identical (report JSON and heap digest), the empty path must be
//! indistinguishable from running with no controller at all, and two
//! paths sharing a prefix must agree on every decision taken before the
//! first differing byte.

use htm_gil::core::explore::{run_path, ExploreTarget};
use htm_gil::core::{ExecConfig, LengthPolicy, RuntimeMode};
use htm_gil::{Executor, MachineProfile, SchedPath, VmConfig};
use proptest::collection::vec;
use proptest::prelude::*;

fn target(mode: RuntimeMode, iters: usize) -> ExploreTarget {
    ExploreTarget {
        id: "prop-counter".into(),
        source: format!(
            r#"
$sum = 0
m = Mutex.new()
threads = []
2.times do |i|
  threads << Thread.new(i) do |tid|
    j = 0
    while j < {iters}
      m.synchronize do
        $sum += 1
      end
      j += 1
    end
  end
end
threads.each do |t|
  t.join()
end
puts($sum)
"#
        ),
        threads: 2,
        mode,
        profile: MachineProfile::generic(4),
        subscription: htm_gil::SubscriptionPolicy::Eager,
        interrupts: true,
        bug_dirty_read: false,
        max_cycles: 500_000_000,
        force_word_access: false,
    }
}

fn mode_of(pick: u8) -> RuntimeMode {
    match pick % 3 {
        0 => RuntimeMode::Gil,
        1 => RuntimeMode::Htm { length: LengthPolicy::Fixed(16) },
        _ => RuntimeMode::Htm { length: LengthPolicy::Dynamic },
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Same path, same target → byte-identical run report JSON, stdout,
    /// heap digest and decision trail.
    #[test]
    fn replay_is_byte_identical(
        bytes in vec(0u8..4, 0..20),
        pick in 0u8..3,
        iters in 2usize..5,
    ) {
        let t = target(mode_of(pick), iters);
        let path = SchedPath::new(bytes);
        let a = run_path(&t, &path);
        let b = run_path(&t, &path);
        prop_assert_eq!(&a.stdout, &b.stdout);
        prop_assert_eq!(&a.heap, &b.heap);
        prop_assert_eq!(&a.taken, &b.taken);
        prop_assert_eq!(&a.arities, &b.arities);
        prop_assert_eq!(a.error.is_some(), b.error.is_some());
        if let (Some(ra), Some(rb)) = (&a.report, &b.report) {
            prop_assert_eq!(ra.to_json().to_compact(), rb.to_json().to_compact());
        }
    }

    /// An installed *empty* path is observationally identical to running
    /// with no controller at all: choice 0 everywhere IS the natural
    /// schedule.
    #[test]
    fn empty_path_equals_no_controller(
        pick in 0u8..3,
        iters in 2usize..5,
    ) {
        let t = target(mode_of(pick), iters);
        let with_ctl = run_path(&t, &SchedPath::empty());
        prop_assert!(with_ctl.error.is_none());
        // The same execution with no controller installed.
        let mut cfg = ExecConfig::new(t.mode, &t.profile);
        cfg.max_cycles = t.max_cycles;
        let vm_cfg = VmConfig { max_threads: t.threads + 2, ..VmConfig::default() };
        let mut ex = Executor::new(&t.source, vm_cfg, t.profile.clone(), cfg).unwrap();
        let bare = ex.run().unwrap();
        let ctl_report = with_ctl.report.unwrap();
        prop_assert_eq!(ctl_report.to_json().to_compact(), bare.to_json().to_compact());
    }

    /// Two paths sharing a prefix take identical decisions up to the
    /// first differing byte: divergence starts exactly at the edit.
    #[test]
    fn divergence_starts_at_the_first_differing_byte(
        prefix in vec(0u8..4, 0..10),
        a_suffix in vec(0u8..4, 1..6),
        b_suffix in vec(0u8..4, 1..6),
        pick in 0u8..3,
    ) {
        let t = target(mode_of(pick), 3);
        let mut a_bytes = prefix.clone();
        a_bytes.extend(&a_suffix);
        let mut b_bytes = prefix.clone();
        b_bytes.extend(&b_suffix);
        // First index where the submitted bytes differ (None = one path
        // extends the other with suffix bytes, still a valid prefix
        // relation for the indices both define).
        let edit = a_bytes
            .iter()
            .zip(&b_bytes)
            .position(|(x, y)| x != y)
            .unwrap_or(a_bytes.len().min(b_bytes.len()));
        let ra = run_path(&t, &SchedPath::new(a_bytes));
        let rb = run_path(&t, &SchedPath::new(b_bytes));
        // Every decision before the edit consumed identical bytes on an
        // identical schedule, so the taken trails agree up to it. (At
        // and past the edit they *may* still agree — e.g. differing
        // bytes that clamp to the same choice.)
        let upto = edit.min(ra.taken.len()).min(rb.taken.len());
        prop_assert_eq!(
            &ra.taken[..upto],
            &rb.taken[..upto],
            "trails diverged before the first differing byte (index {})",
            edit
        );
        prop_assert_eq!(&ra.arities[..upto], &rb.arities[..upto]);
    }
}
