//! Pinned schedule-space counterexamples and hand-written stress paths
//! (DESIGN.md §14).
//!
//! Three layers:
//!
//! 1. **Dynamic find**: bounded DFS over the torn-pair workload with the
//!    test-only dirty-read bug armed must rediscover the violation
//!    within a CI smoke budget and shrink it to a tiny path — proof the
//!    whole explore→oracle→shrink pipeline works end to end, not just on
//!    the day it was written.
//! 2. **Pinned counterexample**: the shrinker's minimized path, committed
//!    as a hex seed. It must keep violating with the bug armed and stay
//!    clean with the bug off, forever — a regression in either direction
//!    (the bug stops being observable, or the fixed semantics regress)
//!    fails this file.
//! 3. **Hand-written stress paths**: flip-heavy paths aimed at the PR 6
//!    escrowed-wake machinery and the PR 8 lease-epoch/doom windows,
//!    replayed under GIL, HTM-16 and HTM-dynamic; the oracle must hold
//!    and the windows must actually be exercised (spurious aborts and
//!    epoch bumps observed).

use bench::explore::{
    bug_demo_target, clean_targets, dfs, lazy_sub_clean_targets, lazy_sub_demo_target,
    torn_pair_clean_target, SearchParams,
};
use htm_gil::core::explore::{check_path, gil_expected, run_path};
use htm_gil::SchedPath;

/// The shrinker's minimized counterexample for the quick-mode torn-pair
/// bug demo: two interrupt-delivery deviations (trail `S0 I1 … S0 I1`)
/// that kill the reader's transactions at exactly the yield points that
/// force its pair-load into the non-speculative GIL-fallback window,
/// where the dirty read commits a torn `$x != $y` observation.
const PINNED_TORN_PAIR_HEX: &str = "0001000000000001";

/// The shrinker's minimized counterexample for the lazy-subscription
/// demo (DESIGN.md §15) — the first *real* (non-injected) unsafety the
/// explorer caught. A single scheduling deviation (`S1` at decision 18)
/// delays the writer so that one of its HTM-1 constant-store toggle
/// transactions survives into the watcher's GIL-fallback tenure and
/// commits between the watcher's two non-transactional global loads.
/// Under `Lazy` the transaction never subscribed to the GIL word, so
/// the commit goes through and the watcher observes the torn pair
/// `$x != $y` — impossible under any GIL schedule. `Eager` kills the
/// same transaction at the subscription read; `LazyGuarded` dooms it
/// from the lock monitor at GIL-acquire time.
const PINNED_LAZY_SUB_HEX: &str = "00000000000000000000000000000000000001";

fn smoke_params() -> SearchParams {
    SearchParams {
        budget: 120,
        max_preempt: 2,
        horizon: 24,
        stop_first: true,
        ..SearchParams::default()
    }
}

#[test]
fn bounded_dfs_rediscovers_the_injected_bug_within_smoke_budget() {
    let target = bug_demo_target(true);
    let out = dfs(&target, &smoke_params(), 2);
    assert!(out.stats.violations > 0, "DFS lost the injected dirty-read bug");
    let v = &out.violations[0];
    assert!(
        v.minimized.len() <= 8,
        "shrinker regressed: minimized to {} branches (> 8): {}",
        v.minimized.len(),
        v.minimized.to_hex()
    );
    // The minimized path must reproduce standalone.
    let expected = gil_expected(&target);
    let (_, mismatch) = check_path(&target, &expected, &v.minimized);
    assert!(mismatch.is_some(), "minimized path no longer reproduces");
}

#[test]
fn pinned_counterexample_still_violates_with_the_bug_armed() {
    let target = bug_demo_target(true);
    let path = SchedPath::from_hex(PINNED_TORN_PAIR_HEX).unwrap();
    let expected = gil_expected(&target);
    let (run, mismatch) = check_path(&target, &expected, &path);
    let m = mismatch.expect("pinned counterexample stopped reproducing the dirty-read bug");
    assert!(m.contains("stdout diverged"), "unexpected violation shape: {m}");
    assert!(run.preemptions >= 2, "the pinned path's deviations were not consumed");
}

#[test]
fn pinned_counterexample_is_clean_with_the_bug_off() {
    let target = torn_pair_clean_target(true);
    let path = SchedPath::from_hex(PINNED_TORN_PAIR_HEX).unwrap();
    let expected = gil_expected(&target);
    assert_eq!(expected.stdout, "0");
    let (_, mismatch) = check_path(&target, &expected, &path);
    assert!(
        mismatch.is_none(),
        "fixed semantics regressed under the pinned schedule: {}",
        mismatch.unwrap()
    );
}

/// Dynamic find for the real bug: the same smoke-budget bounded DFS
/// that rediscovers the injected dirty read must also rediscover the
/// lazy-subscription unsafety — no test-only bug flag involved, just
/// `SubscriptionPolicy::Lazy` on a production code path.
#[test]
fn bounded_dfs_finds_the_lazy_subscription_violation_within_smoke_budget() {
    let target = lazy_sub_demo_target(true);
    let out = dfs(&target, &smoke_params(), 2);
    assert!(out.stats.violations > 0, "DFS lost the lazy-subscription unsafety");
    let v = &out.violations[0];
    assert!(
        v.minimized.len() <= 24,
        "shrinker regressed: minimized to {} branches (> 24): {}",
        v.minimized.len(),
        v.minimized.to_hex()
    );
    let expected = gil_expected(&target);
    let (_, mismatch) = check_path(&target, &expected, &v.minimized);
    assert!(mismatch.is_some(), "minimized path no longer reproduces");
}

#[test]
fn pinned_lazy_counterexample_still_violates_under_lazy_subscription() {
    let target = lazy_sub_demo_target(true);
    let path = SchedPath::from_hex(PINNED_LAZY_SUB_HEX).unwrap();
    let expected = gil_expected(&target);
    assert_eq!(expected.stdout, "\n0", "the GIL oracle must never see a torn pair");
    let (run, mismatch) = check_path(&target, &expected, &path);
    let m = mismatch.expect("pinned counterexample stopped reproducing the lazy unsafety");
    assert!(m.contains("stdout diverged"), "unexpected violation shape: {m}");
    assert!(run.preemptions >= 1, "the pinned path's deviation was not consumed");
}

/// The same schedule is harmless under both safe policies: `Eager`
/// subscribes inside the transaction window, `LazyGuarded` dooms the
/// transaction from the GIL-acquire lock monitor. A violation here
/// means one of the safe policies regressed into the lazy hole.
#[test]
fn pinned_lazy_counterexample_is_clean_under_eager_and_lazy_guarded() {
    let path = SchedPath::from_hex(PINNED_LAZY_SUB_HEX).unwrap();
    for target in lazy_sub_clean_targets(true) {
        let expected = gil_expected(&target);
        assert_eq!(expected.stdout, "\n0");
        let (_, mismatch) = check_path(&target, &expected, &path);
        assert!(
            mismatch.is_none(),
            "{} regressed under the pinned lazy schedule: {}",
            target.id,
            mismatch.unwrap()
        );
    }
}

/// Flip-heavy hand-written paths across the whole clean corpus (every
/// mode: GIL, HTM-16, HTM-dynamic, plus the wake-herd): the oracle must
/// hold on all of them. The interrupt flips (`I`/`C` decisions) land in
/// the PR 6 escrowed-wake windows (transactions killed while holding
/// VM-level mutexes, forcing the escrow/abort paths) and the PR 8
/// lease-epoch windows (every kill bumps the lease epoch mid-lease).
#[test]
fn hand_written_stress_paths_hold_across_modes() {
    let paths = [
        SchedPath::new(vec![1; 24]),
        SchedPath::new(vec![2; 16]),
        SchedPath::new(vec![1, 0, 2, 0, 1, 0, 2, 0, 1, 0, 2, 0]),
        SchedPath::new(vec![0, 0, 0, 1, 1, 1, 0, 0, 0, 2, 2, 2]),
        SchedPath::from_hex(PINNED_TORN_PAIR_HEX).unwrap(),
    ];
    for target in clean_targets(true) {
        let expected = gil_expected(&target);
        for path in &paths {
            let (run, mismatch) = check_path(&target, &expected, path);
            assert!(
                mismatch.is_none(),
                "{} under {}: {}",
                target.id,
                path.to_hex(),
                mismatch.unwrap()
            );
            assert!(run.error.is_none(), "{}: {:?}", target.id, run.error);
        }
    }
}

/// The interrupt-kill windows are actually exercised by the flip paths:
/// under HTM the `I`/`C` kills surface as spurious (timer-interrupt)
/// aborts, and every kill bumps the lease epoch.
#[test]
fn stress_paths_exercise_the_interrupt_and_lease_windows() {
    let target = clean_targets(true)
        .into_iter()
        .find(|t| t.id == "mutex-counter/htm16")
        .expect("corpus target");
    // Alternating bytes: each `S0` (stay on the natural schedule) lets
    // the following interrupt decision consume the `1` and kill the
    // open transaction.
    let run = run_path(&target, &SchedPath::new([0, 1].repeat(16)));
    let report = run.report.expect("clean run");
    assert!(
        report.htm.spurious > 0,
        "no interrupt kill landed: the I/C decision windows were not exercised"
    );
    assert!(report.htm.epoch_bumps > 0, "lease-epoch window not exercised");
    assert!(run.preemptions > 0, "no deviation was consumed");
}

/// Satellite: a failed explored run's diagnostic dump ends with the
/// trailing scheduler decision trail, so a stuck schedule is diagnosable
/// from the error text alone.
#[test]
fn explored_run_failure_dump_names_the_decision_trail() {
    let mut target = clean_targets(true)
        .into_iter()
        .find(|t| t.id == "mutex-counter/htm16")
        .expect("corpus target");
    // Absurdly small cycle cap: the run fails mid-flight with the
    // deadlock-style dump attached.
    target.max_cycles = 5_000;
    let run = run_path(&target, &SchedPath::new(vec![1, 1, 1]));
    let err = run.error.expect("cycle cap must trip");
    assert!(err.contains("sched decisions (tail):"), "dump lost the decision trail:\n{err}");
}
