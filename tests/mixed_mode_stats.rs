//! Regression guard for the non-transactional fast path in `TxMemory`.
//!
//! When no transaction is active and no doom is pending, reads and writes
//! skip all conflict machinery. A GIL/HTM mixed run — HTM-dynamic with its
//! GIL fallback — constantly crosses that boundary: GIL holders access
//! memory plainly, transactions come and go, and non-transactional writes
//! to the GIL word doom subscribed transactions. These tests pin that the
//! fast path changes no observable statistic: dooms from non-transactional
//! accesses are still delivered and counted, access totals still advance,
//! and the whole report is bit-for-bit reproducible.

use htm_gil_core::{ExecConfig, Executor, LengthPolicy, RunReport, RuntimeMode};
use machine_sim::MachineProfile;
use ruby_vm::VmConfig;

fn run_cg(mode: RuntimeMode) -> RunReport {
    let profile = MachineProfile::zec12();
    let cfg = ExecConfig::new(mode, &profile);
    let w = workloads::npb::cg(4, 1);
    let vm = VmConfig { max_threads: 6, ..VmConfig::default() };
    let mut ex = Executor::new(&w.source, vm, profile, cfg).expect("boot");
    ex.run().expect("run")
}

#[test]
fn mixed_gil_htm_run_exercises_both_paths_with_stable_stats() {
    let r = run_cg(RuntimeMode::Htm { length: LengthPolicy::Dynamic });
    // The run mixes transactional and plain execution...
    assert!(r.htm.commits > 0, "no transactions committed");
    assert!(r.gil_acquisitions > 0, "no GIL fallback occurred");
    // ...and non-transactional accesses (GIL word writes by fallback
    // holders) doomed live transactions, which the fast path must not
    // swallow.
    assert!(r.htm.nontx_dooms > 0, "no non-transactional dooms observed");
    assert!(r.htm.reads > 0 && r.htm.writes > 0, "access counters must advance");
    // An identical rerun must produce identical statistics: the fast path
    // is a shortcut, not a behaviour change.
    let r2 = run_cg(RuntimeMode::Htm { length: LengthPolicy::Dynamic });
    assert_eq!(r.htm, r2.htm, "HTM statistics must be reproducible");
    assert_eq!(r.elapsed_cycles, r2.elapsed_cycles);
    assert_eq!(r.stdout, r2.stdout);
}

#[test]
fn pure_gil_run_never_dooms() {
    // Under the plain GIL every access takes the fast path (no
    // transactions ever begin); the conflict counters must stay zero while
    // the access counters still advance.
    let r = run_cg(RuntimeMode::Gil);
    assert_eq!(r.htm.begins, 0);
    assert_eq!(r.htm.total_aborts(), 0);
    assert_eq!(r.htm.nontx_dooms, 0);
    assert!(r.htm.reads > 0 && r.htm.writes > 0);
}
