//! Cross-crate correctness oracle: every workload, in every runtime mode,
//! must print exactly what a 1-thread GIL run prints. Since workloads only
//! print after joining all threads and combine results in thread-id order,
//! identical output means the elided execution was serializable.

use htm_gil::bench_workloads as workloads;
use htm_gil::{ExecConfig, Executor, LengthPolicy, MachineProfile, RuntimeMode, VmConfig};

fn run(source: &str, mode: RuntimeMode, profile: &MachineProfile, threads: usize) -> String {
    let vm_config = VmConfig { max_threads: threads + 2, ..VmConfig::default() };
    let cfg = ExecConfig::new(mode, profile);
    let mut ex = Executor::new(source, vm_config, profile.clone(), cfg).expect("boot");
    ex.run().unwrap_or_else(|e| panic!("{} failed: {e}", mode.label())).stdout
}

fn all_modes() -> Vec<RuntimeMode> {
    vec![
        RuntimeMode::Gil,
        RuntimeMode::Htm { length: LengthPolicy::Fixed(1) },
        RuntimeMode::Htm { length: LengthPolicy::Fixed(16) },
        RuntimeMode::Htm { length: LengthPolicy::Fixed(256) },
        RuntimeMode::Htm { length: LengthPolicy::Dynamic },
        RuntimeMode::FineGrained,
        RuntimeMode::Ideal,
    ]
}

fn assert_serializable(w: &workloads::Workload, profile: &MachineProfile) {
    let reference = run(&w.source, RuntimeMode::Gil, profile, w.threads);
    assert!(!reference.is_empty(), "{} printed nothing", w.name);
    for mode in all_modes() {
        let got = run(&w.source, mode, profile, w.threads);
        assert_eq!(
            got,
            reference,
            "{} under {} diverged from the GIL reference",
            w.name,
            mode.label()
        );
    }
}

#[test]
fn micro_while_serializable() {
    let w = workloads::micro::while_bench(3, 120);
    assert_serializable(&w, &MachineProfile::generic(4));
}

#[test]
fn micro_iterator_serializable() {
    let w = workloads::micro::iterator_bench(3, 80);
    assert_serializable(&w, &MachineProfile::generic(4));
}

#[test]
fn npb_bt_serializable() {
    assert_serializable(&workloads::npb::bt(3, 1), &MachineProfile::generic(4));
}

#[test]
fn npb_cg_serializable() {
    assert_serializable(&workloads::npb::cg(3, 1), &MachineProfile::generic(4));
}

#[test]
fn npb_ft_serializable() {
    assert_serializable(&workloads::npb::ft(3, 1), &MachineProfile::generic(4));
}

#[test]
fn npb_is_serializable() {
    assert_serializable(&workloads::npb::is(3, 1), &MachineProfile::generic(4));
}

#[test]
fn npb_lu_serializable() {
    assert_serializable(&workloads::npb::lu(3, 1), &MachineProfile::generic(4));
}

#[test]
fn npb_mg_serializable() {
    assert_serializable(&workloads::npb::mg(3, 1), &MachineProfile::generic(4));
}

#[test]
fn npb_sp_serializable() {
    assert_serializable(&workloads::npb::sp(3, 1), &MachineProfile::generic(4));
}

#[test]
fn webrick_serializable() {
    assert_serializable(&workloads::webrick::webrick(3, 24), &MachineProfile::generic(4));
}

#[test]
fn rails_serializable() {
    assert_serializable(&workloads::rails::rails(3, 18), &MachineProfile::generic(4));
}

#[test]
fn npb_serializable_on_paper_machines() {
    // The real machine profiles exercise SMT halving (Xeon) and 256-byte
    // lines (zEC12).
    for profile in [MachineProfile::zec12(), MachineProfile::xeon_e3_1275_v3()] {
        let w = workloads::npb::cg(4, 1);
        let reference = run(&w.source, RuntimeMode::Gil, &profile, w.threads);
        for mode in [
            RuntimeMode::Htm { length: LengthPolicy::Fixed(16) },
            RuntimeMode::Htm { length: LengthPolicy::Dynamic },
        ] {
            assert_eq!(
                run(&w.source, mode, &profile, w.threads),
                reference,
                "CG on {} under {}",
                profile.name,
                mode.label()
            );
        }
    }
}

#[test]
fn thread_counts_do_not_change_results() {
    // Per-thread partials combined in tid order: results must be
    // independent of the worker count for the micro benchmark.
    let profile = MachineProfile::generic(4);
    for threads in [1, 2, 5] {
        let w = workloads::micro::while_bench(threads, 60);
        let out =
            run(&w.source, RuntimeMode::Htm { length: LengthPolicy::Dynamic }, &profile, threads);
        assert_eq!(out, workloads::micro::expected_output(threads, 60));
    }
}
