//! Shape tests: small-scale versions of the qualitative claims the figure
//! harnesses reproduce at full scale. These run in CI time (seconds) and
//! guard the *orderings* the paper reports — who beats whom — rather than
//! absolute numbers.

use htm_gil::bench_workloads as workloads;
use htm_gil::{
    ExecConfig, Executor, LengthPolicy, MachineProfile, RunReport, RuntimeMode, VmConfig,
};

fn run(w: &workloads::Workload, mode: RuntimeMode, profile: &MachineProfile) -> RunReport {
    let vm_config = VmConfig { max_threads: w.threads + 2, ..VmConfig::default() };
    let cfg = ExecConfig::new(mode, profile);
    let mut ex = Executor::new(&w.source, vm_config, profile.clone(), cfg).expect("boot");
    ex.run().unwrap_or_else(|e| panic!("{} {}: {e}", w.name, mode.label()))
}

#[test]
fn gil_does_not_scale_on_compute() {
    // Fig. 4/5 baseline: more threads under the GIL ⇒ no speedup.
    let profile = MachineProfile::zec12();
    let t1 = run(&workloads::micro::while_bench(1, 400), RuntimeMode::Gil, &profile);
    let t4 = run(&workloads::micro::while_bench(4, 400), RuntimeMode::Gil, &profile);
    // 4 threads do 4× the work; elapsed must grow ≈4× (no parallelism).
    let ratio = t4.elapsed_cycles as f64 / t1.elapsed_cycles as f64;
    assert!(
        ratio > 3.0,
        "GIL must serialize compute: 4-thread elapsed only {ratio:.2}x of 1-thread"
    );
}

#[test]
fn htm_scales_on_compute() {
    // Fig. 4: HTM runs the same 4× work in much less than 4× the time.
    let profile = MachineProfile::zec12();
    let mode = RuntimeMode::Htm { length: LengthPolicy::Fixed(16) };
    let t1 = run(&workloads::micro::while_bench(1, 400), mode, &profile);
    let t4 = run(&workloads::micro::while_bench(4, 400), mode, &profile);
    let ratio = t4.elapsed_cycles as f64 / t1.elapsed_cycles as f64;
    assert!(ratio < 2.2, "HTM must overlap compute: 4-thread elapsed {ratio:.2}x of 1-thread");
}

#[test]
fn htm_beats_gil_at_four_threads() {
    let profile = MachineProfile::zec12();
    let w = workloads::micro::while_bench(4, 500);
    let gil = run(&w, RuntimeMode::Gil, &profile);
    let htm = run(&w, RuntimeMode::Htm { length: LengthPolicy::Fixed(16) }, &profile);
    let speedup = gil.elapsed_cycles as f64 / htm.elapsed_cycles as f64;
    assert!(speedup > 2.0, "HTM-16 vs GIL at 4 threads: {speedup:.2}x");
}

#[test]
fn htm256_aborts_more_than_htm16() {
    // Fig. 5: long transactions overflow/conflict far more.
    let profile = MachineProfile::zec12();
    let w = workloads::npb::cg(4, 1);
    let r16 = run(&w, RuntimeMode::Htm { length: LengthPolicy::Fixed(16) }, &profile);
    let r256 = run(&w, RuntimeMode::Htm { length: LengthPolicy::Fixed(256) }, &profile);
    assert!(
        r256.abort_ratio_pct() > r16.abort_ratio_pct(),
        "HTM-256 abort ratio {:.1}% must exceed HTM-16's {:.1}%",
        r256.abort_ratio_pct(),
        r16.abort_ratio_pct()
    );
}

#[test]
fn htm1_has_more_begin_overhead_than_htm16() {
    // §4.3 tradeoff: shorter transactions pay more begin/end cycles.
    let profile = MachineProfile::zec12();
    let w = workloads::micro::while_bench(2, 300);
    let r1 = run(&w, RuntimeMode::Htm { length: LengthPolicy::Fixed(1) }, &profile);
    let r16 = run(&w, RuntimeMode::Htm { length: LengthPolicy::Fixed(16) }, &profile);
    assert!(
        r1.htm.begins > 4 * r16.htm.begins,
        "HTM-1 must begin far more transactions ({} vs {})",
        r1.htm.begins,
        r16.htm.begins
    );
    assert!(
        r1.breakdown.tx_begin_end > r16.breakdown.tx_begin_end,
        "HTM-1 must spend more cycles in begin/end"
    );
}

#[test]
fn single_thread_htm_overhead_is_bounded() {
    // §5.6: 18–35% single-thread overhead. Ours should be positive but
    // far from pathological (≤60%).
    let profile = MachineProfile::zec12();
    let w = workloads::npb::cg(1, 1);
    let gil = run(&w, RuntimeMode::Gil, &profile);
    let htm = run(&w, RuntimeMode::Htm { length: LengthPolicy::Dynamic }, &profile);
    let overhead = htm.elapsed_cycles as f64 / gil.elapsed_cycles as f64 - 1.0;
    assert!(
        (-0.05..0.6).contains(&overhead),
        "1-thread HTM-dynamic overhead {overhead:.2} out of range"
    );
}

#[test]
fn dynamic_lengths_shrink_under_contention() {
    // §4.3: conflict-heavy sites end at short lengths.
    let profile = MachineProfile::generic(4);
    // Per-thread slots of one small array share a cache line: real HTM
    // conflicts without a data race in the program.
    let src = r#"
shared = Array.new(3, 0)
threads = []
3.times do |i|
  threads << Thread.new(i) do |tid|
    j = 0
    while j < 1200
      shared[tid] = shared[tid] + 1
      j += 1
    end
  end
end
threads.each do |t|
  t.join()
end
puts(shared[0] + shared[1] + shared[2])
"#;
    let w = workloads::Workload { name: "contend", source: src.into(), threads: 3, requests: 0 };
    let r = run(&w, RuntimeMode::Htm { length: LengthPolicy::Dynamic }, &profile);
    assert_eq!(r.stdout, "3600");
    assert!(r.length_adjustments > 0, "contention must shrink lengths");
}

#[test]
fn gil_gains_from_io_overlap_in_webrick() {
    // Fig. 7: the GIL is released during I/O, so WEBrick-GIL scales some.
    let profile = MachineProfile::xeon_e3_1275_v3();
    let one = run(&workloads::webrick::webrick(1, 24), RuntimeMode::Gil, &profile);
    let four = run(&workloads::webrick::webrick(4, 24), RuntimeMode::Gil, &profile);
    // Same total requests, more clients → faster.
    assert!(
        four.elapsed_cycles < one.elapsed_cycles,
        "4 clients must beat 1 client under the GIL (I/O overlap): {} vs {}",
        four.elapsed_cycles,
        one.elapsed_cycles
    );
}

#[test]
fn htm_beats_gil_on_webrick() {
    // Paper §5.5: HTM-1 (and, on long runs, HTM-dynamic) beat the GIL on
    // WEBrick; short transactions lose almost nothing to the blocking-I/O
    // aborts each request incurs.
    let profile = MachineProfile::xeon_e3_1275_v3();
    let w = workloads::webrick::webrick(4, 48);
    let gil = run(&w, RuntimeMode::Gil, &profile);
    let htm1 = run(&w, RuntimeMode::Htm { length: LengthPolicy::Fixed(1) }, &profile);
    assert_eq!(gil.stdout, htm1.stdout);
    assert!(
        htm1.elapsed_cycles < gil.elapsed_cycles,
        "HTM-1 must beat the GIL on WEBrick ({} vs {})",
        htm1.elapsed_cycles,
        gil.elapsed_cycles
    );
    // HTM-dynamic needs enough requests for the per-site lengths to adapt
    // (the paper's own caveat); at this scale it must stay in the same
    // ballpark as the GIL.
    let dynamic = run(&w, RuntimeMode::Htm { length: LengthPolicy::Dynamic }, &profile);
    assert_eq!(gil.stdout, dynamic.stdout);
    // At 48 requests the per-site lengths have barely adapted (the paper's
    // §5.4/Fig. 6b caveat: on the Xeon, "programs need to run long enough
    // to benefit"); it must still be within its startup envelope.
    assert!(
        (dynamic.elapsed_cycles as f64) < 1.6 * gil.elapsed_cycles as f64,
        "HTM-dynamic exploded on short WEBrick runs ({} vs {})",
        dynamic.elapsed_cycles,
        gil.elapsed_cycles
    );
}

#[test]
fn rails_runs_and_htm_is_at_least_competitive() {
    // Paper Fig. 7: HTM-1 and HTM-dynamic improve Rails throughput ~24 %
    // over the GIL; at CI scale we assert HTM-1 competitiveness and the
    // dynamic policy's bounded startup cost.
    let profile = MachineProfile::xeon_e3_1275_v3();
    let w = workloads::rails::rails(4, 24);
    let gil = run(&w, RuntimeMode::Gil, &profile);
    let htm1 = run(&w, RuntimeMode::Htm { length: LengthPolicy::Fixed(1) }, &profile);
    assert_eq!(gil.stdout, htm1.stdout);
    assert!(
        (htm1.elapsed_cycles as f64) < 1.1 * gil.elapsed_cycles as f64,
        "HTM-1 must be competitive on Rails ({} vs {})",
        htm1.elapsed_cycles,
        gil.elapsed_cycles
    );
    let dynamic = run(&w, RuntimeMode::Htm { length: LengthPolicy::Dynamic }, &profile);
    assert_eq!(gil.stdout, dynamic.stdout);
    assert!(
        (dynamic.elapsed_cycles as f64) < 1.7 * gil.elapsed_cycles as f64,
        "HTM-dynamic exploded on short Rails runs ({} vs {})",
        dynamic.elapsed_cycles,
        gil.elapsed_cycles
    );
}

#[test]
fn ideal_mode_scales_best() {
    // Fig. 9: the Ideal (Java-like) VM is an upper bound on scalability.
    let profile = MachineProfile::generic(12);
    let w1 = workloads::npb::ft(1, 1);
    let w8 = workloads::npb::ft(8, 1);
    let base = run(&w1, RuntimeMode::Ideal, &profile).elapsed_cycles as f64;
    let ideal = base / run(&w8, RuntimeMode::Ideal, &profile).elapsed_cycles as f64;
    let fine = {
        let b = run(&w1, RuntimeMode::FineGrained, &profile).elapsed_cycles as f64;
        b / run(&w8, RuntimeMode::FineGrained, &profile).elapsed_cycles as f64
    };
    assert!(
        ideal >= fine * 0.9,
        "Ideal ({ideal:.2}x) must scale at least as well as FineGrained ({fine:.2}x)"
    );
}

#[test]
fn original_yield_points_hurt_htm() {
    // §5.4: without the extra yield points, store overflows dominate and
    // HTM loses its edge.
    let profile = MachineProfile::zec12();
    let w = workloads::npb::ft(4, 1);
    let extended = run(&w, RuntimeMode::Htm { length: LengthPolicy::Dynamic }, &profile);
    let mut cfg = ExecConfig::new(RuntimeMode::Htm { length: LengthPolicy::Dynamic }, &profile);
    cfg.yield_policy = Some(htm_gil::YieldPolicy::Original);
    let vm_config = VmConfig { max_threads: w.threads + 2, ..VmConfig::default() };
    let mut ex = Executor::new(&w.source, vm_config, profile.clone(), cfg).expect("boot");
    let original = ex.run().expect("run");
    assert_eq!(extended.stdout, original.stdout);
    assert!(
        original.elapsed_cycles > extended.elapsed_cycles,
        "coarse yield points must be slower ({} vs {})",
        original.elapsed_cycles,
        extended.elapsed_cycles
    );
}
