//! Chaos suite: fixed-seed fault injection must never break termination,
//! correctness (vs the GIL oracle) or graceful throughput degradation.
//!
//! These are the run-level forward-progress guarantees of the robustness
//! subsystem:
//!
//! 1. every workload terminates under any injection plan (the Fig. 1
//!    retry machinery plus the livelock watchdog always reach the GIL);
//! 2. stdout and the final global-heap digest are byte-identical to a
//!    pristine GIL run of the same program;
//! 3. throughput converges toward the GIL baseline as the injection rate
//!    approaches 100 % — it never collapses below a fixed fraction of it
//!    (the watchdog's escalation overhead).
//!
//! All seeds are fixed: failures reproduce exactly.

use htm_gil::core::{check_against_gil, oracle};
use htm_gil::{
    ExecConfig, Executor, FaultPlan, LengthPolicy, MachineProfile, RuntimeMode, VmConfig,
    WatchdogConstants,
};

const SEED: u64 = 0xC4A0_5011;

fn profile() -> MachineProfile {
    MachineProfile::generic(4)
}

fn chaos_cfg(rate: f64, shrink: f64, restricted: f64, interrupt: u64) -> ExecConfig {
    let p = profile();
    let mut cfg = ExecConfig::new(RuntimeMode::Htm { length: LengthPolicy::Dynamic }, &p);
    cfg.fault_plan = Some(FaultPlan {
        seed: SEED,
        spurious_rate: rate,
        shrink_rate: shrink,
        restricted_rate: restricted,
    });
    cfg.interrupt_interval = interrupt;
    cfg.watchdog = WatchdogConstants::enabled();
    cfg
}

/// A multi-threaded program with global state, exercising both oracle
/// dimensions (stdout and the heap digest).
const GLOBALS_SRC: &str = r#"
$table = Array.new(4, 0)
$tally = 0
m = Mutex.new()
threads = []
4.times do |i|
  threads << Thread.new(i) do |tid|
    acc = 0
    j = 1
    while j <= 120
      acc += j * (tid + 1)
      j += 1
    end
    $table[tid] = acc
    m.synchronize do
      $tally += acc
    end
  end
end
threads.each do |t|
  t.join()
end
puts($tally)
"#;

#[test]
fn injected_runs_terminate_and_match_the_gil_oracle() {
    // Sweep of spurious rates, including the pathological 100 %.
    for rate in [0.0, 0.1, 0.5, 1.0] {
        let v = check_against_gil(
            GLOBALS_SRC,
            VmConfig::default(),
            profile(),
            chaos_cfg(rate, 0.0, 0.0, 0),
        )
        .unwrap_or_else(|e| panic!("rate {rate}: run failed: {e}"));
        assert!(v.matches(), "rate {rate}: {}", v.mismatch.unwrap());
        assert_eq!(v.subject.stdout, "72600");
        if rate > 0.0 {
            assert!(v.subject.htm.spurious > 0, "rate {rate}: injection must fire");
        }
    }
}

#[test]
fn mixed_fault_plan_with_interrupts_matches_the_oracle() {
    // Spurious + budget-shrink + forced-restricted faults, plus the §5.6
    // timer-interrupt model at an aggressive interval — the worst case.
    let v = check_against_gil(
        GLOBALS_SRC,
        VmConfig::default(),
        profile(),
        chaos_cfg(0.3, 0.1, 0.05, 20_000),
    )
    .expect("mixed-plan run failed");
    assert!(v.matches(), "{}", v.mismatch.unwrap());
    assert!(v.subject.htm.spurious > 0, "spurious faults (or interrupts) must fire");
}

#[test]
fn watchdog_escalates_under_total_injection() {
    // At a 100 % spurious rate no transaction can ever commit: the
    // watchdog must escalate and the run must still finish correctly.
    let v =
        check_against_gil(GLOBALS_SRC, VmConfig::default(), profile(), chaos_cfg(1.0, 0.0, 0.0, 0))
            .expect("total-injection run failed");
    assert!(v.matches(), "{}", v.mismatch.unwrap());
    assert!(
        v.subject.watchdog_escalations > 0,
        "100 % injection must trip the watchdog (got {} escalations)",
        v.subject.watchdog_escalations
    );
    assert_eq!(v.subject.htm.commits, 0, "no transaction survives 100 % injection");
}

#[test]
fn throughput_degrades_gracefully_toward_the_gil_baseline() {
    // The headline forward-progress property: under total injection the
    // watchdog parks speculation, so the run costs at most a bounded
    // multiple of the GIL baseline — it does not livelock or collapse.
    let v =
        check_against_gil(GLOBALS_SRC, VmConfig::default(), profile(), chaos_cfg(1.0, 0.0, 0.0, 0))
            .expect("total-injection run failed");
    assert!(v.matches(), "{}", v.mismatch.unwrap());
    let ratio = v.subject.elapsed_cycles as f64 / v.oracle.elapsed_cycles.max(1) as f64;
    assert!(
        ratio < 2.5,
        "100 % injection must converge to ~GIL cost, got {ratio:.2}× the GIL cycles"
    );
    // And injection-free HTM must still beat the GIL on this workload —
    // the watchdog must not tax the healthy path.
    let clean =
        check_against_gil(GLOBALS_SRC, VmConfig::default(), profile(), chaos_cfg(0.0, 0.0, 0.0, 0))
            .expect("clean run failed");
    assert!(clean.matches());
    assert!(
        (clean.subject.elapsed_cycles as f64) < 1.05 * clean.oracle.elapsed_cycles as f64,
        "clean HTM-dynamic must not be slower than the GIL: {} vs {}",
        clean.subject.elapsed_cycles,
        clean.oracle.elapsed_cycles
    );
}

#[test]
fn fault_free_digest_is_identical_across_all_modes() {
    // The heap-digest oracle itself must be schedule-independent: every
    // runtime mode ends in the same canonical global state.
    let p = profile();
    let mut digests = Vec::new();
    for mode in [
        RuntimeMode::Gil,
        RuntimeMode::Htm { length: LengthPolicy::Fixed(1) },
        RuntimeMode::Htm { length: LengthPolicy::Fixed(16) },
        RuntimeMode::Htm { length: LengthPolicy::Dynamic },
        RuntimeMode::FineGrained,
        RuntimeMode::Ideal,
    ] {
        let cfg = ExecConfig::new(mode, &p);
        let mut ex = Executor::new(GLOBALS_SRC, VmConfig::default(), p.clone(), cfg).unwrap();
        let r = ex.run().unwrap_or_else(|e| panic!("{}: {e}", mode.label()));
        assert_eq!(r.stdout, "72600", "mode {}", mode.label());
        digests.push((mode.label(), oracle::heap_digest(&ex.vm)));
    }
    let (ref first_label, ref first) = digests[0];
    for (label, d) in &digests[1..] {
        assert_eq!(d, first, "heap digest of {label} differs from {first_label}");
    }
}

#[test]
fn interrupt_model_kills_transactions_but_preserves_output() {
    // Interrupts alone (no random injection): deterministic spurious
    // aborts attributed to the timer.
    let v = check_against_gil(
        GLOBALS_SRC,
        VmConfig::default(),
        profile(),
        chaos_cfg(0.0, 0.0, 0.0, 15_000),
    )
    .expect("interrupt run failed");
    assert!(v.matches(), "{}", v.mismatch.unwrap());
    assert!(
        v.subject.htm.spurious > 0,
        "a 15k-cycle interrupt interval must kill some in-flight transactions"
    );
}

#[test]
fn constrained_profile_chaos_point_converges_and_matches_the_oracle() {
    // FORTH-style constrained machine (8 read / 4 write lines,
    // DESIGN.md §15): real capacity aborts dominate, stacked with random
    // injection. The retry ladder plus watchdog must still converge and
    // the oracle must still hold — graceful degradation on hardware
    // whose transactions barely fit anything.
    let p = MachineProfile::constrained();
    // Injection-free first: the tiny geometry alone must produce *real*
    // capacity aborts while the retry ladder still lands every iteration
    // (no fault plan involved — these overflows come from the read set).
    let clean_cfg = ExecConfig::new(RuntimeMode::Htm { length: LengthPolicy::Dynamic }, &p);
    let clean = check_against_gil(GLOBALS_SRC, VmConfig::default(), p.clone(), clean_cfg)
        .expect("constrained clean run failed");
    assert!(clean.matches(), "{}", clean.mismatch.unwrap());
    assert_eq!(clean.subject.stdout, "72600");
    assert!(
        clean.subject.htm.overflow_read + clean.subject.htm.overflow_write > 0,
        "the constrained geometry must produce real capacity aborts"
    );
    assert!(clean.subject.htm.commits > 0, "some transactions must still fit the tiny sets");
    // Now stack random injection on top: nothing commits (every retry is
    // killed before the tiny sets even fill), the watchdog escalates and
    // parks speculation, and the run still finishes on the oracle.
    let mut chaos = ExecConfig::new(RuntimeMode::Htm { length: LengthPolicy::Dynamic }, &p);
    chaos.fault_plan =
        Some(FaultPlan { seed: SEED, spurious_rate: 0.1, shrink_rate: 0.0, restricted_rate: 0.0 });
    chaos.watchdog = WatchdogConstants::enabled();
    let v = check_against_gil(GLOBALS_SRC, VmConfig::default(), p, chaos)
        .expect("constrained chaos run failed");
    assert!(v.matches(), "{}", v.mismatch.unwrap());
    assert_eq!(v.subject.stdout, "72600");
    assert!(v.subject.htm.spurious > 0, "injection must fire");
    assert!(
        v.subject.watchdog_escalations > 0,
        "injection on the constrained profile must trip the watchdog"
    );
}

#[test]
fn lazy_guarded_chaos_point_matches_the_oracle() {
    // The commit-guard policy under the mixed fault plan: the lock
    // monitor's acquire-time dooms stack with injected aborts and timer
    // interrupts, and the oracle must not notice any of it.
    let mut cfg = chaos_cfg(0.3, 0.1, 0.05, 20_000);
    cfg.subscription = htm_gil::SubscriptionPolicy::LazyGuarded;
    let v = check_against_gil(GLOBALS_SRC, VmConfig::default(), profile(), cfg)
        .expect("lazy-guarded chaos run failed");
    assert!(v.matches(), "{}", v.mismatch.unwrap());
    assert!(v.subject.htm.spurious > 0, "injection must fire");
}

#[test]
fn taskserver_chaos_point_matches_the_gil_oracle() {
    // The fixed-seed taskserver chaos point: fault injection *and* timer
    // interrupts at once, against the full queue machinery (bounded ring,
    // backpressure parking, graceful drain) and the mark escrow that
    // feeds the latency pipeline. Shedding stays off so stdout and the
    // final heap digest have a GIL oracle; the latency counters must
    // balance even while transactions are killed from two directions —
    // an aborted slice may leak neither a phantom mark nor a phantom
    // wake.
    let w = workloads::taskserver::taskserver(3, 2, 4, 24, false);
    let vm = VmConfig { max_threads: w.threads + 2, ..VmConfig::default() };
    let v = check_against_gil(&w.source, vm, profile(), chaos_cfg(0.25, 0.05, 0.0, 50_000))
        .expect("taskserver chaos run failed");
    assert!(v.matches(), "{}", v.mismatch.unwrap());
    assert_eq!(v.subject.stdout, workloads::taskserver::expected_stdout(24));
    assert!(v.subject.htm.spurious > 0, "injection must fire on the chaos point");
    let tl = v.subject.task_latency.as_ref().expect("subject latency section");
    assert_eq!((tl.enqueued, tl.completed, tl.shed), (24, 24, 0), "latency counters must balance");
    let otl = v.oracle.task_latency.as_ref().expect("oracle latency section");
    assert_eq!((otl.enqueued, otl.completed, otl.shed), (24, 24, 0));
}
