//! Integration checks on the machine-readable run report (§5.6 shape).
//!
//! The paper's abort investigation (§5.6) found that on the NPB, most
//! transaction conflicts are read-set conflicts and the largest single
//! conflict source is object allocation (free-list head + heap/malloc
//! metadata). These tests re-derive that shape from the emitted JSON
//! document alone — exactly what an external consumer of
//! `--report-json` would see.

use htm_gil_core::{ExecConfig, Executor, Json, LengthPolicy, RuntimeMode};
use machine_sim::MachineProfile;
use ruby_vm::VmConfig;

fn npb_report_json(threads: usize) -> Json {
    let profile = MachineProfile::zec12();
    let mode = RuntimeMode::Htm { length: LengthPolicy::Dynamic };
    let cfg = ExecConfig::new(mode, &profile);
    let w = workloads::npb::cg(threads, 1);
    let vm = VmConfig { max_threads: threads + 2, ..VmConfig::default() };
    let mut ex = Executor::new(&w.source, vm, profile, cfg).expect("boot");
    let report = ex.run().expect("run");
    let json = report.to_json();
    // Round-trip through text so the assertions only use what a consumer
    // of the file would have.
    Json::parse(&json.to_pretty()).expect("self-emitted JSON must parse")
}

fn abort_count(doc: &Json, reason: &str) -> u64 {
    doc.get("htm")
        .and_then(|h| h.get("aborts"))
        .and_then(|a| a.get(reason))
        .and_then(|v| v.as_u64())
        .unwrap_or(0)
}

#[test]
fn npb_report_reproduces_section_5_6_shape() {
    let doc = npb_report_json(12);

    // Read-set conflicts dominate write-set conflicts (§5.6: "more than
    // 80% of the conflicts were detected at the read sets").
    let read = abort_count(&doc, "conflict-read");
    let write = abort_count(&doc, "conflict-write");
    assert!(read > 0, "expected conflict aborts on the NPB at 12 threads");
    assert!(
        read > write,
        "read-set conflicts ({read}) should dominate write-set conflicts ({write})"
    );

    // Allocation is the largest single conflict source (§5.6: "more than
    // half of the conflicts occurred during object allocation").
    // Allocation in the attribution map = free-list head (`allocator`)
    // plus the heap-slot pages and malloc metadata it hands out. Dooms on
    // the GIL word itself are excluded: those are the fallback mechanism
    // (a thread acquiring the GIL aborts every subscriber), not a data
    // conflict on a VM structure, and the paper's retry logic (Fig. 1)
    // likewise separates "GIL held" aborts from true conflicts.
    let sites = doc.get("conflict_sites").expect("conflict_sites object");
    let site = |k: &str| sites.get(k).and_then(|v| v.as_u64()).unwrap_or(0);
    let alloc = site("allocator") + site("heap-slots") + site("malloc-area");
    let others = [
        ("running-thread", site("running-thread")),
        ("globals", site("globals")),
        ("inline-cache", site("inline-cache")),
        ("thread-struct", site("thread-struct")),
        ("stack", site("stack")),
    ];
    let (max_other_name, max_other) = others.iter().max_by_key(|(_, n)| *n).copied().unwrap();
    assert!(
        alloc > max_other,
        "allocation-path conflicts ({alloc}) should be the largest single \
         source, but {max_other_name} has {max_other}"
    );
    let total: u64 = alloc + others.iter().map(|(_, n)| n).sum::<u64>();
    assert!(
        alloc * 2 >= total,
        "allocation should account for at least half of attributed \
         conflicts ({alloc} of {total})"
    );
}

#[test]
fn report_json_totals_are_consistent() {
    let doc = npb_report_json(4);

    // Abort reasons sum to the advertised total.
    let reasons = [
        "conflict-read",
        "conflict-write",
        "overflow-read",
        "overflow-write",
        "explicit",
        "eager-predicted",
        "restricted",
    ];
    let sum: u64 = reasons.iter().map(|r| abort_count(&doc, r)).sum();
    assert_eq!(sum, abort_count(&doc, "total"));

    // begins = commits + aborts for the HTM engine.
    let htm = doc.get("htm").unwrap();
    let n = |k: &str| htm.get(k).and_then(|v| v.as_u64()).unwrap();
    assert_eq!(n("begins"), n("commits") + abort_count(&doc, "total"));

    // Every yield-point profile's per-reason counts sum to its total.
    for p in doc.get("yield_point_profiles").unwrap().as_array().unwrap() {
        let per: u64 = reasons
            .iter()
            .map(|r| p.get("aborts").unwrap().get(r).unwrap().as_u64().unwrap())
            .sum();
        assert_eq!(Some(per), p.get("total_aborts").unwrap().as_u64());
        assert!(p.get("length").unwrap().as_u64().unwrap() >= 1);
    }
}
