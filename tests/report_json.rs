//! Integration checks on the machine-readable run report (§5.6 shape).
//!
//! The paper's abort investigation (§5.6) found that on the NPB, most
//! transaction conflicts are read-set conflicts and the largest single
//! conflict source is object allocation (free-list head + heap/malloc
//! metadata). These tests re-derive that shape from the emitted JSON
//! document alone — exactly what an external consumer of
//! `--report-json` would see.

use htm_gil_core::{ExecConfig, Executor, Json, LengthPolicy, RunReport, RuntimeMode};
use machine_sim::MachineProfile;
use ruby_vm::VmConfig;

fn run(w: &workloads::Workload, mode: RuntimeMode) -> RunReport {
    let profile = MachineProfile::zec12();
    let cfg = ExecConfig::new(mode, &profile);
    let vm = VmConfig { max_threads: w.threads + 2, ..VmConfig::default() };
    let mut ex = Executor::new(&w.source, vm, profile, cfg).expect("boot");
    ex.run().expect("run")
}

fn npb_report_json(threads: usize) -> Json {
    let w = workloads::npb::cg(threads, 1);
    let report = run(&w, RuntimeMode::Htm { length: LengthPolicy::Dynamic });
    let json = report.to_json();
    // Round-trip through text so the assertions only use what a consumer
    // of the file would have.
    Json::parse(&json.to_pretty()).expect("self-emitted JSON must parse")
}

fn abort_count(doc: &Json, reason: &str) -> u64 {
    doc.get("htm")
        .and_then(|h| h.get("aborts"))
        .and_then(|a| a.get(reason))
        .and_then(|v| v.as_u64())
        .unwrap_or(0)
}

#[test]
fn npb_report_reproduces_section_5_6_shape() {
    let doc = npb_report_json(12);

    // Read-set conflicts dominate write-set conflicts (§5.6: "more than
    // 80% of the conflicts were detected at the read sets").
    let read = abort_count(&doc, "conflict-read");
    let write = abort_count(&doc, "conflict-write");
    assert!(read > 0, "expected conflict aborts on the NPB at 12 threads");
    assert!(
        read > write,
        "read-set conflicts ({read}) should dominate write-set conflicts ({write})"
    );

    // Allocation is the largest single conflict source (§5.6: "more than
    // half of the conflicts occurred during object allocation").
    // Allocation in the attribution map = free-list head (`allocator`)
    // plus the heap-slot pages and malloc metadata it hands out. Dooms on
    // the GIL word itself are excluded: those are the fallback mechanism
    // (a thread acquiring the GIL aborts every subscriber), not a data
    // conflict on a VM structure, and the paper's retry logic (Fig. 1)
    // likewise separates "GIL held" aborts from true conflicts.
    let sites = doc.get("conflict_sites").expect("conflict_sites object");
    let site = |k: &str| sites.get(k).and_then(|v| v.as_u64()).unwrap_or(0);
    let alloc = site("allocator") + site("heap-slots") + site("malloc-area");
    let others = [
        ("running-thread", site("running-thread")),
        ("globals", site("globals")),
        ("inline-cache", site("inline-cache")),
        ("thread-struct", site("thread-struct")),
        ("stack", site("stack")),
    ];
    let (max_other_name, max_other) = others.iter().max_by_key(|(_, n)| *n).copied().unwrap();
    assert!(
        alloc > max_other,
        "allocation-path conflicts ({alloc}) should be the largest single \
         source, but {max_other_name} has {max_other}"
    );
    let total: u64 = alloc + others.iter().map(|(_, n)| n).sum::<u64>();
    assert!(
        alloc * 2 >= total,
        "allocation should account for at least half of attributed \
         conflicts ({alloc} of {total})"
    );
}

#[test]
fn report_json_totals_are_consistent() {
    let doc = npb_report_json(4);

    // Abort reasons sum to the advertised total.
    let reasons = [
        "conflict-read",
        "conflict-write",
        "overflow-read",
        "overflow-write",
        "explicit",
        "eager-predicted",
        "restricted",
    ];
    let sum: u64 = reasons.iter().map(|r| abort_count(&doc, r)).sum();
    assert_eq!(sum, abort_count(&doc, "total"));

    // begins = commits + aborts for the HTM engine.
    let htm = doc.get("htm").unwrap();
    let n = |k: &str| htm.get(k).and_then(|v| v.as_u64()).unwrap();
    assert_eq!(n("begins"), n("commits") + abort_count(&doc, "total"));

    // Every yield-point profile's per-reason counts sum to its total.
    for p in doc.get("yield_point_profiles").unwrap().as_array().unwrap() {
        let per: u64 = reasons
            .iter()
            .map(|r| p.get("aborts").unwrap().get(r).unwrap().as_u64().unwrap())
            .sum();
        assert_eq!(Some(per), p.get("total_aborts").unwrap().as_u64());
        assert!(p.get("length").unwrap().as_u64().unwrap() >= 1);
    }

    // A non-server workload must not emit the task_latency section: its
    // document keeps the exact pre-taskserver schema.
    assert!(doc.get("task_latency").is_none(), "NPB report must not carry task_latency");
}

#[test]
fn report_json_exposes_lease_accounting() {
    let doc = npb_report_json(4);
    let htm = doc.get("htm").unwrap();
    let n = |k: &str| {
        htm.get(k).and_then(|v| v.as_u64()).unwrap_or_else(|| panic!("htm.{k} must be present"))
    };

    // The interpreter hot path runs leased in the default config, so a
    // real workload must record both grants and (hit) traffic, and every
    // transaction boundary bumps the epoch at least once.
    assert!(n("lease_misses") > 0, "try_lease is always counted, even when denied");
    assert!(n("lease_hits") > 0, "NPB under leases must serve some accesses from leases");
    assert!(
        n("epoch_bumps") >= n("begins"),
        "every begin/commit/abort/doom bumps the global lease epoch"
    );

    // Batched deltas are flushed before the report is emitted: the
    // mem_reads/mem_writes totals already contain the leased accesses, so
    // they bound the hit count.
    assert!(n("lease_hits") <= n("mem_reads") + n("mem_writes"));
}

#[test]
fn taskserver_latency_section_round_trips() {
    // Run the task server, emit the report as text, parse it back, and
    // check the latency section the way a dashboard consuming
    // `--report-json` would: field presence, percentile ordering, and
    // agreement between the counters and the histograms.
    let tasks = 48;
    let w = workloads::taskserver::taskserver(3, 2, 4, tasks, false);
    let report = run(&w, RuntimeMode::Htm { length: LengthPolicy::Dynamic });
    let doc = Json::parse(&report.to_json().to_pretty()).expect("self-emitted JSON must parse");

    let tl = doc.get("task_latency").expect("taskserver report must carry task_latency");
    let n = |k: &str| tl.get(k).and_then(Json::as_u64).unwrap_or_else(|| panic!("field {k}"));
    assert_eq!(n("enqueued"), tasks as u64);
    assert_eq!(n("completed"), tasks as u64);
    assert_eq!(n("shed"), 0);

    for hist in ["e2e", "queue_wait"] {
        let h = tl.get(hist).unwrap_or_else(|| panic!("{hist} histogram"));
        let v =
            |k: &str| h.get(k).and_then(Json::as_u64).unwrap_or_else(|| panic!("{hist}.{k} field"));
        assert_eq!(v("count"), tasks as u64, "{hist} must have one sample per task");
        assert!(v("min") <= v("p50"), "{hist}: min <= p50");
        assert!(v("p50") <= v("p90"), "{hist}: p50 <= p90");
        assert!(v("p90") <= v("p99"), "{hist}: p90 <= p99");
        assert!(v("p99") <= v("p999"), "{hist}: p99 <= p999");
        assert!(v("p999") <= v("max"), "{hist}: p999 <= max");
        assert!(h.get("mean").and_then(Json::as_f64).expect("mean") > 0.0);
    }

    // Queue-depth time series: windows are ordered, the depth respects
    // the configured bound, and at least one window saw a queued task.
    assert!(tl.get("window_cycles").and_then(Json::as_u64).expect("window_cycles") > 0);
    let series = tl.get("queue_series").and_then(Json::as_array).expect("queue_series");
    assert!(!series.is_empty(), "queue series must not be empty");
    let mut last_start = None;
    let mut max_depth = 0;
    for wnd in series {
        let start = wnd.get("start_cycle").and_then(Json::as_u64).expect("start_cycle");
        if let Some(prev) = last_start {
            assert!(start > prev, "windows must be strictly ordered");
        }
        last_start = Some(start);
        max_depth = max_depth.max(wnd.get("max_depth").and_then(Json::as_u64).expect("max_depth"));
        wnd.get("sheds").and_then(Json::as_u64).expect("sheds");
    }
    assert!(max_depth >= 1, "some window must have seen a queued task");
    assert!(max_depth <= 4, "queue depth may never exceed the bound");
}
