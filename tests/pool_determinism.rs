//! Pool-size invariance: every artifact the bench harness emits must be
//! **byte-identical** whether the sweep ran on one worker or many.
//!
//! `bench::runner::sweep` promises results (and captured `--report-json`
//! records) in submission order regardless of completion order, so the
//! CSV/JSON bytes derived from them may not depend on `--jobs`. These
//! tests regenerate the Fig. 4 and Fig. 8 panels and a chaos degradation
//! report at pool sizes 1 and 4 and compare the rendered bytes — any
//! divergence means results leaked between slots or were reordered.
//!
//! The quick variants run in the default test tier. The `#[ignore]`d
//! variants additionally re-run the full sweeps at `--jobs 4` and compare
//! against the **committed** goldens under `bench-results/`, proving that
//! parallel regeneration reproduces the bytes the serial harness
//! committed; CI runs them with `cargo test --release -- --ignored`.

use std::sync::Mutex;

use bench::runner;

/// `runner`'s pool size is process-global; libtest runs tests in this
/// binary concurrently, so every test serializes on this lock.
static JOBS_LOCK: Mutex<()> = Mutex::new(());

/// Run `f` at an explicit pool size, restoring `--jobs 1` afterwards.
fn at_jobs<R>(jobs: usize, f: impl Fn() -> R) -> R {
    runner::set_jobs(jobs);
    let r = f();
    runner::set_jobs(1);
    r
}

/// Render all Fig. 4 panels to one CSV blob.
fn fig4_bytes(quick: bool) -> String {
    bench::figures::fig4_panels(quick)
        .iter()
        .map(|p| format!("# {}\n{}", p.csv_name, p.set.to_csv()))
        .collect()
}

/// Render the Fig. 8 abort panels and breakdown to one CSV blob.
fn fig8_bytes(quick: bool) -> String {
    let mut out: String = bench::figures::fig8_abort_panels(quick)
        .iter()
        .map(|p| format!("# {}\n{}", p.csv_name, p.set.to_csv()))
        .collect();
    let b = bench::figures::fig8_breakdown(quick);
    out.push_str(&format!("# {}\n{}", b.csv_name, b.csv));
    out
}

#[test]
fn fig4_bytes_are_pool_size_invariant() {
    let _guard = JOBS_LOCK.lock().unwrap();
    let serial = at_jobs(1, || fig4_bytes(true));
    let pooled = at_jobs(4, || fig4_bytes(true));
    assert_eq!(serial, pooled, "fig4 bytes differ between --jobs 1 and --jobs 4");
}

#[test]
fn fig8_bytes_are_pool_size_invariant() {
    let _guard = JOBS_LOCK.lock().unwrap();
    let serial = at_jobs(1, || fig8_bytes(true));
    let pooled = at_jobs(4, || fig8_bytes(true));
    assert_eq!(serial, pooled, "fig8 bytes differ between --jobs 1 and --jobs 4");
}

#[test]
fn chaos_report_is_pool_size_invariant() {
    let _guard = JOBS_LOCK.lock().unwrap();
    let serial = at_jobs(1, || bench::chaos::degradation_report(true).to_pretty());
    let pooled = at_jobs(4, || bench::chaos::degradation_report(true).to_pretty());
    assert_eq!(serial, pooled, "chaos JSON differs between --jobs 1 and --jobs 4");
}

#[test]
fn taskserver_report_is_pool_size_invariant() {
    // The latency artifact carries percentile tables and queue-depth
    // time series derived from every point's run report; none of it may
    // depend on how the sweep was scheduled onto the worker pool.
    let _guard = JOBS_LOCK.lock().unwrap();
    let serial = at_jobs(1, || bench::taskserver::latency_sweep(true).to_pretty());
    let pooled = at_jobs(4, || bench::taskserver::latency_sweep(true).to_pretty());
    assert_eq!(serial, pooled, "taskserver JSON differs between --jobs 1 and --jobs 4");
}

#[test]
fn explore_stats_are_pool_size_invariant() {
    // The exploration stats document deliberately carries no `jobs`
    // field: DFS wave membership, submission order, budget truncation
    // and `--stop-first` pruning are all deterministic, so the whole
    // search — executions, distinct paths, depths, violations — must
    // be byte-identical at any pool size. (`dfs` takes the pool size
    // directly; no need for the process-global `--jobs` state.)
    let params = bench::explore::SearchParams {
        budget: 40,
        max_preempt: 2,
        horizon: 24,
        ..bench::explore::SearchParams::default()
    };
    let targets = bench::explore::clean_targets(true);
    let pick = |id: &str| targets.iter().find(|t| t.id == id).expect("corpus target").clone();
    for target in [pick("mutex-counter/htm16"), pick("herd4/htm16")] {
        let serial = bench::explore::dfs(&target, &params, 1);
        let pooled = bench::explore::dfs(&target, &params, 4);
        assert_eq!(
            bench::explore::stats_json("dfs", &params, &[serial.stats]).to_pretty(),
            bench::explore::stats_json("dfs", &params, &[pooled.stats]).to_pretty(),
            "{}: exploration stats differ between jobs=1 and jobs=4",
            target.id
        );
    }
}

#[test]
fn explore_stop_first_is_pool_size_invariant() {
    // With the injected bug armed and --stop-first on, the pruned pool
    // map must stop at the same violation (and count the same
    // executions) at any pool size.
    let params = bench::explore::SearchParams {
        budget: 120,
        max_preempt: 2,
        horizon: 24,
        stop_first: true,
        ..bench::explore::SearchParams::default()
    };
    let target = bench::explore::bug_demo_target(true);
    let serial = bench::explore::dfs(&target, &params, 1);
    let pooled = bench::explore::dfs(&target, &params, 4);
    assert_eq!(serial.stats.violations, pooled.stats.violations);
    assert!(serial.stats.violations > 0);
    assert_eq!(
        serial.violations[0].minimized.to_hex(),
        pooled.violations[0].minimized.to_hex(),
        "stop-first found different counterexamples at different pool sizes"
    );
    assert_eq!(
        bench::explore::stats_json("dfs", &params, &[serial.stats]).to_pretty(),
        bench::explore::stats_json("dfs", &params, &[pooled.stats]).to_pretty(),
    );
}

fn committed(csv_name: &str) -> String {
    let path = bench::results_dir().join(format!("{csv_name}.csv"));
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()))
}

#[test]
#[ignore = "full fig4 sweep (seconds in release, minutes in debug); CI runs with --ignored"]
fn parallel_fig4_regeneration_matches_committed_goldens() {
    let _guard = JOBS_LOCK.lock().unwrap();
    let panels = at_jobs(4, || bench::figures::fig4_panels(false));
    for panel in panels {
        assert_eq!(
            panel.set.to_csv(),
            committed(&panel.csv_name),
            "{} regenerated at --jobs 4 drifted from committed bytes",
            panel.csv_name
        );
    }
}

#[test]
#[ignore = "full fig8 sweep (seconds in release, minutes in debug); CI runs with --ignored"]
fn parallel_fig8_regeneration_matches_committed_goldens() {
    let _guard = JOBS_LOCK.lock().unwrap();
    let (panels, breakdown) = at_jobs(4, || {
        (bench::figures::fig8_abort_panels(false), bench::figures::fig8_breakdown(false))
    });
    for panel in panels {
        assert_eq!(
            panel.set.to_csv(),
            committed(&panel.csv_name),
            "{} regenerated at --jobs 4 drifted from committed bytes",
            panel.csv_name
        );
    }
    assert_eq!(
        breakdown.csv,
        committed(&breakdown.csv_name),
        "{} regenerated at --jobs 4 drifted from committed bytes",
        breakdown.csv_name
    );
}
