//! Queue semantics of the taskserver scenario: backpressure blocking,
//! shed accounting, FIFO completion under a single worker, and graceful
//! drain without loss or duplication — each at fixed seeds/configs, in
//! GIL and HTM modes.

use htm_gil::bench_workloads::taskserver::{expected_stdout, taskserver};
use htm_gil::{
    ExecConfig, Executor, LengthPolicy, MachineProfile, RunReport, RuntimeMode, VmConfig,
};

fn run(w: &htm_gil::Workload, mode: RuntimeMode) -> RunReport {
    let profile = MachineProfile::generic(4);
    let vm_config = VmConfig { max_threads: w.threads + 2, ..VmConfig::default() };
    let cfg = ExecConfig::new(mode, &profile);
    let mut ex = Executor::new(&w.source, vm_config, profile, cfg).expect("boot");
    ex.run().unwrap_or_else(|e| panic!("{} {}: {e}", w.name, mode.label()))
}

const MODES: [RuntimeMode; 3] = [
    RuntimeMode::Gil,
    RuntimeMode::Htm { length: LengthPolicy::Fixed(16) },
    RuntimeMode::Htm { length: LengthPolicy::Dynamic },
];

#[test]
fn backpressure_blocks_and_completes_everything() {
    // Queue bound 1: clients must block (not drop) whenever the single
    // slot is taken; every task still completes, and the observed queue
    // depth never exceeds the bound.
    let w = taskserver(3, 2, 1, 12, false);
    for mode in MODES {
        let r = run(&w, mode);
        assert_eq!(r.stdout, expected_stdout(12), "mode {}", mode.label());
        let tl = r.task_latency.as_ref().expect("server run must report latency");
        assert_eq!(tl.enqueued, 12, "mode {}", mode.label());
        assert_eq!(tl.completed, 12, "mode {}", mode.label());
        assert_eq!(tl.shed, 0, "mode {}", mode.label());
        let max_depth = tl.queue_series.iter().map(|w| w.max_depth).max().unwrap_or(0);
        assert!(max_depth <= 1, "depth {max_depth} exceeded bound 1 in {}", mode.label());
    }
}

#[test]
fn shed_accounting_balances() {
    // Shedding on with a tiny queue: every task is either enqueued or
    // shed — exactly once — and everything enqueued completes.
    let w = taskserver(4, 1, 1, 16, true);
    for mode in MODES {
        let r = run(&w, mode);
        let tl = r.task_latency.as_ref().expect("latency section");
        assert_eq!(tl.enqueued + tl.shed, 16, "mode {}", mode.label());
        assert_eq!(tl.completed, tl.enqueued, "accepted tasks must complete");
        let series_sheds: u64 = tl.queue_series.iter().map(|w| w.sheds).sum();
        assert_eq!(series_sheds, tl.shed, "time series must account every shed");
        assert!(tl.shed > 0, "bound-1 queue with 4 clients and 1 worker must shed");
    }
}

#[test]
fn fifo_completion_under_single_worker() {
    // One client, one worker: the ring buffer must hand tasks out in
    // submission order. This source mirrors the taskserver queue but
    // records the completion order (safe: one worker, no races on it).
    const SRC: &str = r#"
NTASKS = 8
QBOUND = 3
$order = ""
qm = Mutex.new()
qbuf = Array.new(QBOUND, 0)
qstate = Array.new(3, 0)
client = Thread.new() do
  k = 0
  while k < NTASKS
    conn_wait(0, k)
    settled = 0
    while settled == 0
      qm.synchronize do
        if qstate[1] < QBOUND
          qbuf[(qstate[0] + qstate[1]) % QBOUND] = k
          qstate[1] = qstate[1] + 1
          srv_mark(0, k)
          settled = 1
        end
      end
      if settled == 0
        io_wait(1)
      end
    end
    k += 1
  end
end
worker = Thread.new() do
  running = 1
  while running == 1
    id = 0
    got = 0
    fin = 0
    qm.synchronize do
      if qstate[1] > 0
        id = qbuf[qstate[0]]
        qstate[0] = (qstate[0] + 1) % QBOUND
        qstate[1] = qstate[1] - 1
        srv_mark(1, id)
        got = 1
      elsif qstate[2] == 1
        fin = 1
      end
    end
    if got == 1
      $order = $order + id.to_s + ","
      srv_mark(2, id)
    elsif fin == 1
      running = 0
    else
      io_wait(1)
    end
  end
end
client.join()
qm.synchronize do
  qstate[2] = 1
end
worker.join()
puts($order)
"#;
    for mode in MODES {
        let profile = MachineProfile::generic(4);
        let cfg = ExecConfig::new(mode, &profile);
        let mut ex = Executor::new(SRC, VmConfig::default(), profile, cfg).expect("boot");
        let r = ex.run().unwrap_or_else(|e| panic!("{}: {e}", mode.label()));
        assert_eq!(r.stdout, "0,1,2,3,4,5,6,7,", "FIFO violated in {}", mode.label());
        let tl = r.task_latency.as_ref().expect("latency section");
        assert_eq!(tl.completed, 8);
        assert_eq!(tl.queue_wait.count, 8);
    }
}

#[test]
fn graceful_drain_loses_and_duplicates_nothing() {
    // Clients finish while tasks are still queued; workers must drain
    // the backlog before exiting. Every task contributes a positive term
    // to the checksum, so a lost task lowers it and a re-executed one
    // raises it — either way the stdout comparison fails.
    let w = taskserver(2, 3, 4, 16, false);
    for mode in MODES {
        let r = run(&w, mode);
        assert_eq!(r.stdout, expected_stdout(16), "mode {}", mode.label());
        let tl = r.task_latency.as_ref().expect("latency section");
        assert_eq!((tl.enqueued, tl.completed, tl.shed), (16, 16, 0), "mode {}", mode.label());
        assert_eq!(tl.e2e.count, 16, "every task needs an end-to-end sample");
        assert_eq!(tl.queue_wait.count, 16, "every task needs a queue-wait sample");
        assert!(tl.e2e.p50 >= tl.queue_wait.min, "e2e includes the queue wait");
        assert!(tl.e2e.max >= tl.e2e.p99 && tl.e2e.p99 >= tl.e2e.p50, "percentiles ordered");
    }
}

#[test]
fn latency_report_absent_without_marks() {
    // Ordinary workloads never emit srv_mark: the report section must
    // stay None so their JSON artifacts keep the pre-taskserver schema.
    let w = htm_gil::bench_workloads::micro::while_bench(2, 50);
    let r = run(&w, RuntimeMode::Gil);
    assert!(r.task_latency.is_none());
}
