//! Versioned-inline-cache invalidation under every runtime mode.
//!
//! The pre-decoded dispatch path guards each send site with a packed
//! `(method_table_version, class_id)` word. These tests pin down the two
//! events that must invalidate filled caches — method *replacement* (the
//! global version bump) and object *shape mutation* (the ivar table of a
//! class growing mid-run) — and check that the observable behaviour is
//! identical across GIL, HTM-static and HTM-dynamic, both as stdout and
//! as the canonical heap digest. A chaos point at a 25 % injection rate
//! exercises the escrow: cache fills and version bumps performed inside a
//! transaction that aborts must vanish without a trace.

use htm_gil::core::{check_against_gil, oracle};
use htm_gil::{
    ExecConfig, Executor, FaultPlan, LengthPolicy, MachineProfile, RuntimeMode, VmConfig,
    WatchdogConstants,
};

fn profile() -> MachineProfile {
    MachineProfile::generic(4)
}

fn modes() -> [RuntimeMode; 3] {
    [
        RuntimeMode::Gil,
        RuntimeMode::Htm { length: LengthPolicy::Fixed(16) },
        RuntimeMode::Htm { length: LengthPolicy::Dynamic },
    ]
}

/// `C#m` is redefined twice mid-run, after four threads have filled the
/// send-site cache inside `probe` with the previous entry. Every phase
/// reuses the *same textual call site*, so a stale cache would keep
/// returning the old method's value and skew the total.
const REDEFINE_SRC: &str = r#"
class C
  def m()
    7
  end
end

def probe(o, reps)
  s = 0
  i = 0
  while i < reps
    s += o.m
    i += 1
  end
  s
end

def phase(reps)
  $slots = Array.new(4, 0)
  threads = []
  4.times do |i|
    threads << Thread.new(i) do |tid|
      $slots[tid] = probe(C.new(), reps)
    end
  end
  threads.each do |t|
    t.join()
  end
  total = 0
  j = 0
  while j < 4
    total += $slots[j]
    j += 1
  end
  total
end

$sum = phase(50)
class C
  def m()
    11
  end
end
$sum += phase(50)
class C
  def m()
    2
  end
end
$sum += phase(50)
puts($sum)
"#;

/// 200 calls per phase at 7, then 11, then 2 per call.
const REDEFINE_STDOUT: &str = "4000";

/// Class `P` starts with one ivar (`@a`); mid-run every thread grows its
/// objects with a second (`@b`), extending the class's ivar table while
/// the `geta` read sites are already cached against the one-slot shape.
const SHAPE_SRC: &str = r#"
class P
  def initialize(a)
    @a = a
  end
  def grow(b)
    @b = b
  end
  def geta()
    @a
  end
  def getb()
    @b
  end
end

def work(tid)
  objs = []
  i = 0
  while i < 8
    objs << P.new(tid + i)
    i += 1
  end
  s = 0
  objs.each do |o|
    s += o.geta
  end
  i = 0
  while i < 8
    objs[i].grow(10 * i)
    i += 1
  end
  objs.each do |o|
    s += o.geta + o.getb
  end
  s
end

$slots = Array.new(4, 0)
threads = []
4.times do |i|
  threads << Thread.new(i) do |tid|
    $slots[tid] = work(tid)
  end
end
threads.each do |t|
  t.join()
end
total = 0
j = 0
while j < 4
  total += $slots[j]
  j += 1
end
puts(total)
"#;

/// Per thread: Σ(tid+i) = 8·tid+28, then the same again plus Σ10i = 280.
const SHAPE_STDOUT: &str = "1440";

/// Run `src` under every mode, asserting the expected stdout and that
/// all modes end in the same canonical heap state.
fn assert_identical_across_modes(src: &str, expected_stdout: &str) {
    let p = profile();
    let mut digests = Vec::new();
    for mode in modes() {
        let cfg = ExecConfig::new(mode, &p);
        let mut ex = Executor::new(src, VmConfig::default(), p.clone(), cfg).unwrap();
        let r = ex.run().unwrap_or_else(|e| panic!("{}: {e}", mode.label()));
        assert_eq!(r.stdout, expected_stdout, "mode {}", mode.label());
        digests.push((mode.label(), oracle::heap_digest(&ex.vm)));
    }
    let (ref first_label, ref first) = digests[0];
    for (label, d) in &digests[1..] {
        assert_eq!(d, first, "heap digest of {label} differs from {first_label}");
    }
}

#[test]
fn method_redefinition_invalidates_send_caches_in_all_modes() {
    assert_identical_across_modes(REDEFINE_SRC, REDEFINE_STDOUT);
}

#[test]
fn shape_mutation_invalidates_ivar_caches_in_all_modes() {
    assert_identical_across_modes(SHAPE_SRC, SHAPE_STDOUT);
}

#[test]
fn redefinition_matches_the_gil_oracle_under_both_htm_policies() {
    let p = profile();
    for length in [LengthPolicy::Fixed(16), LengthPolicy::Dynamic] {
        let cfg = ExecConfig::new(RuntimeMode::Htm { length }, &p);
        let v = check_against_gil(REDEFINE_SRC, VmConfig::default(), p.clone(), cfg)
            .unwrap_or_else(|e| panic!("{length:?}: run failed: {e}"));
        assert!(v.matches(), "{length:?}: {}", v.mismatch.unwrap());
        assert_eq!(v.subject.stdout, REDEFINE_STDOUT);
    }
}

#[test]
fn chaos_point_at_25_percent_exercises_escrowed_cache_fills() {
    // 25 % spurious injection on the redefinition workload: transactions
    // abort while threads are filling send caches and while `class C`
    // blocks are bumping the method-table version. An aborted fill must
    // roll back with the undo log and an aborted bump must be dropped
    // from the escrow — a leak of either diverges the cache guards and,
    // with them, the observable run.
    let p = profile();
    let mut cfg = ExecConfig::new(RuntimeMode::Htm { length: LengthPolicy::Dynamic }, &p);
    cfg.fault_plan = Some(FaultPlan {
        seed: 0x1C_CAFE,
        spurious_rate: 0.25,
        shrink_rate: 0.05,
        restricted_rate: 0.0,
    });
    cfg.interrupt_interval = 50_000;
    cfg.watchdog = WatchdogConstants::enabled();
    let v = check_against_gil(REDEFINE_SRC, VmConfig::default(), p, cfg)
        .expect("chaos redefinition run failed");
    assert!(v.matches(), "{}", v.mismatch.unwrap());
    assert_eq!(v.subject.stdout, REDEFINE_STDOUT);
    assert!(v.subject.htm.begins > 0, "threads must speculate before the watchdog parks them");
    assert!(v.subject.htm.spurious > 0, "25 % injection must fire");
    assert!(v.subject.htm.total_aborts() > 0, "aborts must roll escrowed fills back");
}
