//! Property tests across the full stack: randomly generated concurrent
//! Ruby programs must behave identically under every runtime mode
//! (serializability), and rollback/retry must never corrupt results.
//!
//! The generator composes from a small vocabulary of thread-safe
//! building blocks (per-thread accumulation, mutex-guarded shared
//! counters, disjoint array slots) so every generated program has exactly
//! one correct output; the property is that all modes produce it.

use htm_gil::core::heap_digest;
use htm_gil::{
    ExecConfig, Executor, LengthPolicy, MachineProfile, RunReport, RuntimeMode, SubscriptionPolicy,
    VmConfig,
};
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum Body {
    /// Plain per-thread loop accumulating into a private local.
    PrivateSum { iters: u8 },
    /// Mutex-guarded increments of a shared counter.
    MutexCount { iters: u8 },
    /// Writes to a per-thread slot of a shared array.
    DisjointSlots { iters: u8 },
    /// Float accumulation (allocator pressure).
    FloatSum { iters: u8 },
}

fn body_strategy() -> impl Strategy<Value = Body> {
    prop_oneof![
        (1u8..40).prop_map(|iters| Body::PrivateSum { iters }),
        (1u8..12).prop_map(|iters| Body::MutexCount { iters }),
        (1u8..25).prop_map(|iters| Body::DisjointSlots { iters }),
        (1u8..20).prop_map(|iters| Body::FloatSum { iters }),
    ]
}

/// Render a program: `threads` workers all running `body`, results
/// combined deterministically.
fn render(threads: usize, body: &Body) -> (String, String) {
    let (inner, combine, expected): (String, &str, String) = match body {
        Body::PrivateSum { iters } => (
            format!(
                "    s = 0\n    j = 1\n    while j <= {iters}\n      s += j\n      j += 1\n    end\n    out[tid] = s\n"
            ),
            "total",
            {
                let per = i64::from(*iters) * (i64::from(*iters) + 1) / 2;
                format!("{}", per * threads as i64)
            },
        ),
        Body::MutexCount { iters } => (
            format!(
                "    j = 0\n    while j < {iters}\n      m.synchronize do\n        count[0] = count[0] + 1\n      end\n      j += 1\n    end\n    out[tid] = 0\n"
            ),
            "count0",
            format!("{}", i64::from(*iters) * threads as i64),
        ),
        Body::DisjointSlots { iters } => (
            format!(
                "    j = 0\n    while j < {iters}\n      out[tid] = out[tid] + tid + 1\n      j += 1\n    end\n"
            ),
            "total",
            {
                let n = threads as i64;
                let iters = i64::from(*iters);
                // Σ_tid iters·(tid+1)
                format!("{}", iters * n * (n + 1) / 2)
            },
        ),
        Body::FloatSum { iters } => (
            format!(
                "    s = 0.0\n    j = 0\n    while j < {iters}\n      s += 0.5\n      j += 1\n    end\n    out[tid] = s.to_i * 2\n"
            ),
            "total",
            // trunc(iters·0.5)·2 per thread: odd iteration counts floor.
            format!("{}", (i64::from(*iters) / 2) * 2 * threads as i64),
        ),
    };
    let src = format!(
        r#"
m = Mutex.new()
count = Array.new(1, 0)
out = Array.new({threads}, 0)
threads = []
{threads}.times do |t|
  threads << Thread.new(t) do |tid|
{inner}
  end
end
threads.each do |t|
  t.join()
end
total = 0
out.each do |r|
  total += r
end
if "{combine}" == "count0"
  puts(count[0])
else
  puts(total)
end
"#
    );
    (src, expected)
}

fn run(src: &str, mode: RuntimeMode, threads: usize) -> String {
    run_subscribed(src, mode, threads, SubscriptionPolicy::Eager).0.stdout
}

/// Full-fidelity run: report plus the address-free heap digest, under an
/// explicit GIL-subscription policy (DESIGN.md §15).
fn run_subscribed(
    src: &str,
    mode: RuntimeMode,
    threads: usize,
    subscription: SubscriptionPolicy,
) -> (RunReport, String) {
    let profile = MachineProfile::generic(4);
    let vm_config = VmConfig { max_threads: threads + 2, ..VmConfig::default() };
    let mut cfg = ExecConfig::new(mode, &profile);
    cfg.max_cycles = 3_000_000_000; // hang guard
    cfg.subscription = subscription;
    let mut ex = Executor::new(src, vm_config, profile, cfg).expect("boot");
    let report = ex.run().unwrap_or_else(|e| panic!("{}: {e}\n{src}", mode.label()));
    let digest = heap_digest(&ex.vm);
    (report, digest)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn random_programs_are_serializable(
        threads in 1usize..4,
        body in body_strategy(),
    ) {
        let (src, expected) = render(threads, &body);
        for mode in [
            RuntimeMode::Gil,
            RuntimeMode::Htm { length: LengthPolicy::Fixed(1) },
            RuntimeMode::Htm { length: LengthPolicy::Fixed(16) },
            RuntimeMode::Htm { length: LengthPolicy::Dynamic },
            RuntimeMode::Ideal,
        ] {
            let got = run(&src, mode, threads);
            prop_assert_eq!(
                got.clone(), expected.clone(),
                "mode {} body {:?} threads {}", mode.label(), body, threads
            );
        }
    }

    /// `LazyGuarded` is observably identical to `Eager`: the GIL-acquire
    /// lock monitor dooms exactly the transactions Eager's in-window
    /// subscription read would have killed, so random programs produce
    /// the same stdout, the same final heap digest, and the same HTM
    /// counters. `Lazy` is deliberately absent here — it is the unsafe
    /// ablation whose divergence the schedule explorer pins in
    /// `tests/schedule_regressions.rs`; equivalence is not a property it
    /// is supposed to have.
    ///
    /// Exact counter/timing parity requires no read-set overflow:
    /// Eager's subscription read occupies a read-set slot and
    /// LazyGuarded's lock monitor does not, so a run that dies of
    /// ReadOverflow sees the abort one access later under LazyGuarded.
    /// Result equivalence (stdout + heap digest) is asserted
    /// unconditionally; the counter comparison is gated on the
    /// no-overflow runs where it is exact.
    #[test]
    fn lazy_guarded_is_observably_eager(
        threads in 1usize..4,
        body in body_strategy(),
    ) {
        let (src, expected) = render(threads, &body);
        for mode in [
            RuntimeMode::Htm { length: LengthPolicy::Fixed(4) },
            RuntimeMode::Htm { length: LengthPolicy::Fixed(16) },
            RuntimeMode::Htm { length: LengthPolicy::Dynamic },
        ] {
            let (eager, eager_heap) =
                run_subscribed(&src, mode, threads, SubscriptionPolicy::Eager);
            let (guarded, guarded_heap) =
                run_subscribed(&src, mode, threads, SubscriptionPolicy::LazyGuarded);
            prop_assert_eq!(
                eager.stdout.clone(), expected.clone(),
                "eager {} body {:?} threads {}", mode.label(), body, threads
            );
            prop_assert_eq!(eager.stdout.clone(), guarded.stdout.clone(),
                "stdout diverged under {}", mode.label());
            prop_assert_eq!(eager_heap, guarded_heap,
                "heap digest diverged under {}", mode.label());
            if eager.htm.overflow_read == 0 && guarded.htm.overflow_read == 0 {
                prop_assert_eq!(eager.htm.clone(), guarded.htm.clone(),
                    "HTM counters diverged under {}", mode.label());
                prop_assert_eq!(eager.elapsed_cycles, guarded.elapsed_cycles,
                    "timing diverged under {}", mode.label());
            }
        }
    }
}
