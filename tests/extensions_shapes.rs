//! Shape tests for the §5.6/§7 extension features (see
//! `ruby_vm::extensions` and the `extensions` bench binary).

use htm_gil::bench_workloads as workloads;
use htm_gil::{
    ExecConfig, Executor, LengthPolicy, MachineProfile, RunReport, RuntimeMode, VmConfig,
};

fn run(w: &workloads::Workload, mode: RuntimeMode, vm_config: VmConfig) -> RunReport {
    let profile = MachineProfile::zec12();
    let cfg = ExecConfig::new(mode, &profile);
    let mut ex = Executor::new(&w.source, vm_config, profile, cfg).expect("boot");
    ex.run().unwrap_or_else(|e| panic!("{}: {e}", w.name))
}

fn vmc(threads: usize) -> VmConfig {
    VmConfig { max_threads: threads + 2, ..VmConfig::default() }
}

const HTM16: RuntimeMode = RuntimeMode::Htm { length: LengthPolicy::Fixed(16) };

#[test]
fn refcount_writes_preserve_results_but_add_conflicts() {
    // §7: CPython-style INCREF/DECREF traffic must not change program
    // results, but must add shared write traffic (more aborts under HTM).
    let w = workloads::npb::cg(4, 1);
    let base = run(&w, HTM16, vmc(4));
    let mut cfg = vmc(4);
    cfg.refcount_writes = true;
    let rc = run(&w, HTM16, cfg);
    assert_eq!(base.stdout, rc.stdout, "refcounting must be transparent");
    assert!(
        rc.htm.total_aborts() > base.htm.total_aborts(),
        "refcount traffic must cause extra aborts ({} vs {})",
        rc.htm.total_aborts(),
        base.htm.total_aborts()
    );
    assert!(rc.elapsed_cycles > base.elapsed_cycles, "refcounting must slow HTM down");
}

#[test]
fn refcount_writes_are_harmless_under_the_gil() {
    // Under the GIL there is nothing to conflict with: results identical,
    // only the plain INCREF/DECREF cost is added.
    let w = workloads::micro::while_bench(2, 150);
    let base = run(&w, RuntimeMode::Gil, vmc(2));
    let mut cfg = vmc(2);
    cfg.refcount_writes = true;
    let rc = run(&w, RuntimeMode::Gil, cfg);
    assert_eq!(base.stdout, rc.stdout);
    assert_eq!(rc.htm.total_aborts(), 0);
}

#[test]
fn thread_local_ics_preserve_results() {
    let w = workloads::npb::bt(3, 1);
    let base = run(&w, HTM16, vmc(3));
    let mut cfg = vmc(3);
    cfg.thread_local_ics = true;
    let tl = run(&w, HTM16, cfg);
    assert_eq!(base.stdout, tl.stdout);
}

#[test]
fn thread_local_ics_remove_ic_conflicts() {
    // A workload whose inline caches churn across threads: polymorphic
    // call sites exercised concurrently. With shared ICs the refills
    // conflict; with per-thread ICs they cannot.
    let src = r#"
class A
  def go()
    1
  end
end
class B
  def go()
    2
  end
end
objs = [A.new(), B.new()]
out = Array.new(3, 0)
threads = []
3.times do |t|
  threads << Thread.new(t) do |tid|
    s = 0
    j = 0
    while j < 400
      s += objs[j % 2].go
      j += 1
    end
    out[tid] = s
  end
end
threads.each do |t|
  t.join()
end
puts(out[0] + out[1] + out[2])
"#;
    let w = workloads::Workload { name: "poly", source: src.into(), threads: 3, requests: 0 };
    // Use the *original* refill-on-every-miss policy so shared ICs churn.
    let mut shared_cfg = vmc(3);
    shared_cfg.method_ic_fill_once = false;
    let shared = run(&w, HTM16, shared_cfg);
    let mut tl_cfg = vmc(3);
    tl_cfg.method_ic_fill_once = false;
    tl_cfg.thread_local_ics = true;
    let tl = run(&w, HTM16, tl_cfg);
    assert_eq!(shared.stdout, tl.stdout);
    assert_eq!(shared.stdout, "1800");
    let shared_ic =
        shared.conflict_sites.get(&htm_gil::core::ConflictSite::InlineCache).copied().unwrap_or(0);
    let tl_ic =
        tl.conflict_sites.get(&htm_gil::core::ConflictSite::InlineCache).copied().unwrap_or(0);
    assert!(
        tl_ic < shared_ic.max(1),
        "thread-local ICs must eliminate IC conflicts ({tl_ic} vs {shared_ic})"
    );
}

#[test]
fn tl_lazy_sweep_preserves_results_under_gc_pressure() {
    let w = workloads::npb::ft(3, 1);
    let base = run(&w, HTM16, vmc(3).small_heap());
    let mut cfg = vmc(3).small_heap();
    cfg.tl_lazy_sweep = true;
    let tl = run(&w, HTM16, cfg);
    assert_eq!(base.stdout, tl.stdout);
    assert!(tl.gc_runs >= 1, "small heap must actually collect");
}

#[test]
fn tl_lazy_sweep_serializable_across_modes() {
    let w = workloads::npb::bt(3, 1);
    let mut gil_cfg = vmc(3).small_heap();
    gil_cfg.tl_lazy_sweep = true;
    let reference = run(&w, RuntimeMode::Gil, gil_cfg);
    for mode in [
        RuntimeMode::Htm { length: LengthPolicy::Fixed(1) },
        HTM16,
        RuntimeMode::Htm { length: LengthPolicy::Dynamic },
    ] {
        let mut cfg = vmc(3).small_heap();
        cfg.tl_lazy_sweep = true;
        let r = run(&w, mode, cfg);
        assert_eq!(r.stdout, reference.stdout, "{}", mode.label());
    }
}
